package sqlrun

import "fmt"

// Parse reads a SQL script in the sqlgen dialect: a sequence of
// ';'-terminated CREATE TABLE ... AS SELECT statements with -- comments.
func Parse(src string) ([]Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Stmt
	for !p.at(tokEOF) {
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
	}
	return stmts, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokKind) bool {
	return p.peek().kind == k
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) atSymbol(s string) bool {
	t := p.peek()
	return t.kind == tokSymbol && t.text == s
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return fmt.Errorf("sqlrun: expected %s, got %q", kw, p.peek())
	}
	p.next()
	return nil
}

func (p *parser) expectSymbol(s string) error {
	if !p.atSymbol(s) {
		return fmt.Errorf("sqlrun: expected %q, got %q", s, p.peek())
	}
	p.next()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if !p.at(tokIdent) {
		return "", fmt.Errorf("sqlrun: expected identifier, got %q", p.peek())
	}
	return p.next().text, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &CreateTable{Name: name, Query: q}, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	if p.atKeyword("DISTINCT") {
		p.next()
		sel.Distinct = true
	}
	for {
		col, err := p.parseSelectCol()
		if err != nil {
			return nil, err
		}
		sel.Cols = append(sel.Cols, col)
		if !p.atSymbol(",") {
			break
		}
		p.next()
	}
	if p.atKeyword("FROM") {
		p.next()
		from, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}
	if p.atKeyword("WHERE") {
		p.next()
		cond, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		sel.Where = cond
	}
	if p.atKeyword("GROUP") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		sel.GroupBy = col
	}
	if p.atKeyword("UNION") {
		p.next()
		if p.atKeyword("ALL") {
			p.next()
			sel.UnionAll = true
		}
		tail, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		sel.Union = tail
	}
	return sel, nil
}

func (p *parser) parseSelectCol() (SelectCol, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectCol{}, err
	}
	col := SelectCol{Expr: e}
	if p.atKeyword("AS") {
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return SelectCol{}, err
		}
		col.Name = name
		return col, nil
	}
	if ref, ok := e.(*ColRef); ok {
		col.Name = ref.Name
		return col, nil
	}
	return SelectCol{}, fmt.Errorf("sqlrun: computed column needs AS name near %q", p.peek())
}

func (p *parser) parseFrom() (From, error) {
	left, err := p.parseFromAtom()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("CROSS") {
		p.next()
		if err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		right, err := p.parseFromAtom()
		if err != nil {
			return nil, err
		}
		left = &FromCrossJoin{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseFromAtom() (From, error) {
	if p.atSymbol("(") {
		p.next()
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &FromSubquery{Query: q, Alias: alias}, nil
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ft := &FromTable{Table: table}
	if p.atKeyword("AS") {
		p.next()
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ft.Alias = alias
	}
	return ft, nil
}

func (p *parser) parseCond() (*Cond, error) {
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	if !p.at(tokString) {
		return nil, fmt.Errorf("sqlrun: WHERE needs a string literal, got %q", p.peek())
	}
	lit := p.next().text
	cond := &Cond{Col: col, Lit: lit}
	if p.atKeyword("AND") {
		p.next()
		tail, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		cond.And = tail
	}
	return cond, nil
}

// Expression grammar: concat > additive > multiplicative > primary.

func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for p.atSymbol("||") {
		p.next()
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		left = &Concat{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.atSymbol("+") || p.atSymbol("-") {
		op := p.next().text[0]
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &Arith{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.atSymbol("*") || p.atSymbol("/") {
		op := p.next().text[0]
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = &Arith{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokString:
		p.next()
		return &Lit{Value: t.text}, nil
	case t.kind == tokNumber:
		p.next()
		var v float64
		if _, err := fmt.Sscanf(t.text, "%g", &v); err != nil {
			return nil, fmt.Errorf("sqlrun: bad number %q", t.text)
		}
		return &NumLit{Value: v}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokKeyword && t.text == "CAST":
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("NUMERIC"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &Cast{E: e}, nil
	case t.kind == tokKeyword && t.text == "MAX":
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &Max{E: e}, nil
	case t.kind == tokKeyword && t.text == "CASE":
		return p.parseCase()
	case t.kind == tokIdent:
		p.next()
		if p.atSymbol(".") {
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColRef{Qualifier: t.text, Name: name}, nil
		}
		return &ColRef{Name: t.text}, nil
	default:
		return nil, fmt.Errorf("sqlrun: unexpected %q in expression", t)
	}
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &Case{}
	for p.atKeyword("WHEN") {
		p.next()
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		if !p.at(tokString) {
			return nil, fmt.Errorf("sqlrun: CASE WHEN needs a string literal, got %q", p.peek())
		}
		lit := p.next().text
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Col: col, Lit: lit, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, fmt.Errorf("sqlrun: CASE without WHEN arms")
	}
	if p.atKeyword("ELSE") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
