// Package sqlrun executes the SQL scripts produced by package sqlgen
// against in-memory databases (package relation). It implements exactly
// the dialect the generator emits — CREATE TABLE ... AS SELECT chains with
// DISTINCT, CROSS JOIN, inline UNION ALL metadata tables, WHERE equality,
// GROUP BY with MAX, UNION, CASE WHEN, string concatenation (||), and
// arithmetic over CAST(... AS NUMERIC) — which makes the full
// discover → generate SQL → run SQL pipeline testable end to end without
// an external RDBMS, and doubles as the relational execution substrate the
// paper assumes around TUPELO deployments.
package sqlrun

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokEOF     tokKind = iota
	tokIdent           // bare or "quoted" identifier
	tokString          // 'string literal'
	tokNumber          // numeric literal
	tokSymbol          // ( ) , ; + - * / = and the two-char ||
	tokKeyword         // uppercase-normalized SQL keyword
)

var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "AS": true, "SELECT": true,
	"DISTINCT": true, "FROM": true, "WHERE": true, "GROUP": true,
	"BY": true, "UNION": true, "ALL": true, "CROSS": true, "JOIN": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"MAX": true, "CAST": true, "NUMERIC": true, "AND": true,
}

type token struct {
	kind tokKind
	text string // keyword: uppercase; ident/string: decoded value
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "<eof>"
	}
	return t.text
}

// lex tokenizes a SQL script. Comment lines (--) are skipped.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '"':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '"' {
					if i+1 < len(src) && src[i+1] == '"' {
						b.WriteByte('"')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlrun: unterminated identifier at offset %d", start)
			}
			toks = append(toks, token{kind: tokIdent, text: b.String(), pos: start})
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlrun: unterminated string at offset %d", start)
			}
			toks = append(toks, token{kind: tokString, text: b.String(), pos: start})
		case c == '|':
			if i+1 >= len(src) || src[i+1] != '|' {
				return nil, fmt.Errorf("sqlrun: stray '|' at offset %d", i)
			}
			toks = append(toks, token{kind: tokSymbol, text: "||", pos: i})
			i += 2
		case strings.ContainsRune("(),;+-*/=.", rune(c)):
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: src[start:i], pos: start})
		case isIdentStart(c):
			start := i
			for i < len(src) && isIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		default:
			return nil, fmt.Errorf("sqlrun: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
