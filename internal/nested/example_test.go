package nested_test

import (
	"fmt"

	"tupelo/internal/nested"
	"tupelo/internal/search"
)

// ExampleDiscover shows nested-model mapping discovery: two XML feeds that
// disagree on names, reconciled by the same search architecture as the
// relational system.
func ExampleDiscover() {
	src := nested.MustParse(`<books><book title="Dune"/></books>`)
	tgt := nested.MustParse(`<library><item name="Dune"/></library>`)
	res, err := nested.Discover(src, tgt, nested.XOptions{Algorithm: search.RBFS})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Expr)
	// Output:
	// rename_tag[book->item]
	// rename_tag[books->library]
	// rename_attr[item,title->name]
}

// ExampleXExpr_Eval shows executing an LX expression directly.
func ExampleXExpr_Eval() {
	doc := nested.MustParse(`<flight carrier="AirEast"/>`)
	expr := nested.XExpr{nested.AttrToChild{Tag: "flight", Attr: "carrier"}}
	out, _ := expr.Eval(doc)
	fmt.Print(out)
	// Output:
	// <flight>
	//   <carrier>AirEast</carrier>
	// </flight>
}
