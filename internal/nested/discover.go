package nested

import (
	"fmt"
	"sort"
	"strings"

	"tupelo/internal/search"
)

// Discovery for the nested model reuses the generic search core unchanged:
// states are documents, moves are LX operators instantiated from the two
// critical documents, the goal is containment of the target document, and
// the heuristic is the token-difference h1 transplanted to (tags, attrs,
// values). That the whole file fits in a few hundred lines is the point of
// §7's claim about the architecture's generality.

// docState adapts *Node to search.State.
type docState struct {
	doc *Node
	key string
}

func newDocState(doc *Node) *docState {
	return &docState{doc: doc, key: doc.Fingerprint()}
}

// Key implements search.State.
func (s *docState) Key() string { return s.key }

// xProblem is the nested-model mapping search space.
type xProblem struct {
	source *Node
	target *Node

	tTags  map[string]bool
	tAttrs map[string]bool
	tVals  map[string]bool
}

func newXProblem(source, target *Node) *xProblem {
	return &xProblem{
		source: source,
		target: target,
		tTags:  target.Tags(),
		tAttrs: target.AttrNames(),
		tVals:  target.Values(),
	}
}

// Start implements search.Problem.
func (p *xProblem) Start() search.State { return newDocState(p.source) }

// IsGoal implements search.Problem.
func (p *xProblem) IsGoal(s search.State) bool {
	return s.(*docState).doc.Contains(p.target)
}

// Successors implements search.Problem, instantiating LX operators from
// tokens of the state and the target.
func (p *xProblem) Successors(s search.State) ([]search.Move, error) {
	doc := s.(*docState).doc
	var ops []XOp
	tags := sortedKeys(doc.Tags())
	attrsByTag := attrIndex(doc)
	missingTags := p.missing(p.tTags, doc.Tags())
	missingAttrs := p.missing(p.tAttrs, doc.AttrNames())

	for _, tag := range tags {
		if !p.tTags[tag] {
			for _, to := range missingTags {
				ops = append(ops, RenameTag{From: tag, To: to})
			}
		}
		for _, a := range attrsByTag[tag] {
			if !p.tAttrs[a] {
				for _, to := range missingAttrs {
					ops = append(ops, RenameAttr{Tag: tag, From: a, To: to})
				}
			}
			// Demote an attribute whose name the target uses as a tag.
			if p.tTags[a] {
				ops = append(ops, AttrToChild{Tag: tag, Attr: a})
			}
		}
	}
	// Promote leaf children whose tag the target uses as an attribute, and
	// hoist intermediate levels the target does not know.
	doc.Walk(func(n *Node) {
		seen := map[string]bool{}
		for _, c := range n.Children {
			if seen[c.Tag] {
				continue
			}
			seen[c.Tag] = true
			if p.tAttrs[c.Tag] {
				ops = append(ops, ChildToAttr{Tag: n.Tag, ChildTag: c.Tag})
			}
			if !p.tTags[c.Tag] && len(c.Attrs) == 0 && c.Text == "" {
				ops = append(ops, Hoist{Tag: n.Tag, ChildTag: c.Tag})
			}
		}
		if n.Text != "" {
			for _, a := range missingAttrs {
				if p.tVals[n.Text] {
					ops = append(ops, TextToAttr{Tag: n.Tag, Attr: a})
				}
			}
		}
	})

	var moves []search.Move
	seen := map[string]bool{}
	for _, op := range ops {
		label := op.String()
		if seen[label] {
			continue
		}
		seen[label] = true
		next, err := op.Apply(doc)
		if err != nil {
			continue
		}
		ns := newDocState(next)
		if ns.key == s.Key() {
			continue
		}
		moves = append(moves, search.Move{Label: label, To: ns, Cost: 1})
	}
	return moves, nil
}

func (p *xProblem) missing(want, have map[string]bool) []string {
	var out []string
	for k := range want {
		if !have[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func attrIndex(doc *Node) map[string][]string {
	idx := map[string]map[string]bool{}
	doc.Walk(func(n *Node) {
		if idx[n.Tag] == nil {
			idx[n.Tag] = map[string]bool{}
		}
		for a := range n.Attrs {
			idx[n.Tag][a] = true
		}
	})
	out := make(map[string][]string, len(idx))
	for tag, attrs := range idx {
		out[tag] = sortedKeys(attrs)
	}
	return out
}

// h1x is the nested analogue of §3's h1: target tokens (tags, attribute
// names, values) missing from the state.
func (p *xProblem) h1x(doc *Node) int {
	return countMissing(p.tTags, doc.Tags()) +
		countMissing(p.tAttrs, doc.AttrNames()) +
		countMissing(p.tVals, doc.Values())
}

func countMissing(want, have map[string]bool) int {
	n := 0
	for k := range want {
		if !have[k] {
			n++
		}
	}
	return n
}

// XResult is a successful nested-model discovery.
type XResult struct {
	Expr  XExpr
	Stats search.Stats
}

// XOptions configures nested-model discovery.
type XOptions struct {
	// Algorithm defaults to RBFS.
	Algorithm search.Algorithm
	// Limits bounds the search; MaxStates defaults to 1,000,000.
	Limits search.Limits
}

// Discover searches for an LX expression carrying the source critical
// document to (a superset of) the target critical document.
func Discover(source, target *Node, opts XOptions) (*XResult, error) {
	if source == nil || target == nil {
		return nil, fmt.Errorf("nested: nil source or target document")
	}
	if opts.Limits.MaxStates == 0 {
		opts.Limits.MaxStates = 1_000_000
	}
	prob := newXProblem(source, target)
	memo := map[string]int{}
	h := func(s search.State) int {
		ds := s.(*docState)
		if v, ok := memo[ds.key]; ok {
			return v
		}
		v := prob.h1x(ds.doc)
		memo[ds.key] = v
		return v
	}
	res, err := search.Run(opts.Algorithm, prob, h, opts.Limits)
	if err != nil {
		return nil, err
	}
	expr, err := parseLabels(res.Path)
	if err != nil {
		return nil, err
	}
	return &XResult{Expr: expr, Stats: res.Stats}, nil
}

// parseLabels reconstructs the LX expression from move labels.
func parseLabels(path []search.Move) (XExpr, error) {
	var expr XExpr
	for _, m := range path {
		op, err := parseXOp(m.Label)
		if err != nil {
			return nil, fmt.Errorf("nested: internal error reconstructing expression: %v", err)
		}
		expr = append(expr, op)
	}
	return expr, nil
}

// ParseXOp parses the textual form of an LX operator.
func parseXOp(s string) (XOp, error) {
	open := strings.IndexByte(s, '[')
	if open <= 0 || !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("bad operator %q", s)
	}
	name, args := s[:open], s[open+1:len(s)-1]
	two := func() (string, string, bool) {
		i := strings.IndexByte(args, ',')
		if i <= 0 || i == len(args)-1 {
			return "", "", false
		}
		return args[:i], args[i+1:], true
	}
	arrow := func(s string) (string, string, bool) {
		i := strings.Index(s, "->")
		if i <= 0 || i+2 >= len(s) {
			return "", "", false
		}
		return s[:i], s[i+2:], true
	}
	switch name {
	case "rename_tag":
		from, to, ok := arrow(args)
		if !ok {
			return nil, fmt.Errorf("bad rename_tag %q", s)
		}
		return RenameTag{From: from, To: to}, nil
	case "rename_attr":
		tag, rest, ok := two()
		if !ok {
			return nil, fmt.Errorf("bad rename_attr %q", s)
		}
		from, to, ok := arrow(rest)
		if !ok {
			return nil, fmt.Errorf("bad rename_attr %q", s)
		}
		return RenameAttr{Tag: tag, From: from, To: to}, nil
	case "attr_to_child":
		tag, attr, ok := two()
		if !ok {
			return nil, fmt.Errorf("bad attr_to_child %q", s)
		}
		return AttrToChild{Tag: tag, Attr: attr}, nil
	case "child_to_attr":
		tag, child, ok := two()
		if !ok {
			return nil, fmt.Errorf("bad child_to_attr %q", s)
		}
		return ChildToAttr{Tag: tag, ChildTag: child}, nil
	case "hoist":
		tag, child, ok := two()
		if !ok {
			return nil, fmt.Errorf("bad hoist %q", s)
		}
		return Hoist{Tag: tag, ChildTag: child}, nil
	case "text_to_attr":
		tag, attr, ok := two()
		if !ok {
			return nil, fmt.Errorf("bad text_to_attr %q", s)
		}
		return TextToAttr{Tag: tag, Attr: attr}, nil
	default:
		return nil, fmt.Errorf("unknown operator %q", name)
	}
}
