package nested

import (
	"fmt"
	"strings"
)

// XOp is one operator of LX, the mapping language for the nested model.
// Operators apply to every matching element of the document and copy the
// input tree (states stay immutable, as in the relational core).
type XOp interface {
	Apply(doc *Node) (*Node, error)
	String() string
}

// XExpr is a sequence of LX operators.
type XExpr []XOp

// Eval applies the expression left to right.
func (e XExpr) Eval(doc *Node) (*Node, error) {
	cur := doc
	for i, op := range e {
		next, err := op.Apply(cur)
		if err != nil {
			return nil, fmt.Errorf("step %d (%s): %w", i+1, op, err)
		}
		cur = next
	}
	return cur, nil
}

// String renders the expression one operator per line.
func (e XExpr) String() string {
	parts := make([]string, len(e))
	for i, op := range e {
		parts[i] = op.String()
	}
	return strings.Join(parts, "\n")
}

// RenameTag renames every element tagged From to To (the element-level ρ).
type RenameTag struct {
	From, To string
}

// Apply implements XOp.
func (o RenameTag) Apply(doc *Node) (*Node, error) {
	if o.From == "" || o.To == "" {
		return nil, fmt.Errorf("nested: rename_tag: empty tag")
	}
	out := doc.Clone()
	out.Walk(func(n *Node) {
		if n.Tag == o.From {
			n.Tag = o.To
		}
	})
	return out, nil
}

func (o RenameTag) String() string { return fmt.Sprintf("rename_tag[%s->%s]", o.From, o.To) }

// RenameAttr renames attribute From to To on every element tagged Tag
// (the attribute-level ρ).
type RenameAttr struct {
	Tag, From, To string
}

// Apply implements XOp.
func (o RenameAttr) Apply(doc *Node) (*Node, error) {
	if o.To == "" {
		return nil, fmt.Errorf("nested: rename_attr: empty attribute")
	}
	out := doc.Clone()
	var conflict error
	out.Walk(func(n *Node) {
		if n.Tag != o.Tag {
			return
		}
		v, ok := n.Attrs[o.From]
		if !ok {
			return
		}
		if _, clash := n.Attrs[o.To]; clash {
			conflict = fmt.Errorf("nested: rename_attr: %s already has @%s", o.Tag, o.To)
			return
		}
		delete(n.Attrs, o.From)
		n.Attrs[o.To] = v
	})
	if conflict != nil {
		return nil, conflict
	}
	return out, nil
}

func (o RenameAttr) String() string {
	return fmt.Sprintf("rename_attr[%s,%s->%s]", o.Tag, o.From, o.To)
}

// AttrToChild demotes an attribute into a child element: every element
// tagged Tag with attribute Attr loses the attribute and gains a child
// <Attr>value</Attr>. This is the nested analogue of ↓ (metadata becomes
// structure).
type AttrToChild struct {
	Tag, Attr string
}

// Apply implements XOp.
func (o AttrToChild) Apply(doc *Node) (*Node, error) {
	out := doc.Clone()
	out.Walk(func(n *Node) {
		if n.Tag != o.Tag {
			return
		}
		v, ok := n.Attrs[o.Attr]
		if !ok {
			return
		}
		delete(n.Attrs, o.Attr)
		n.Children = append(n.Children, NewNode(o.Attr, nil, v))
	})
	return out, nil
}

func (o AttrToChild) String() string { return fmt.Sprintf("attr_to_child[%s,%s]", o.Tag, o.Attr) }

// ChildToAttr promotes a leaf child into an attribute: every element
// tagged Tag with exactly one child tagged ChildTag — a leaf carrying only
// text — loses that child and gains the attribute ChildTag="text". The
// nested analogue of ↑ (structure becomes metadata).
type ChildToAttr struct {
	Tag, ChildTag string
}

// Apply implements XOp.
func (o ChildToAttr) Apply(doc *Node) (*Node, error) {
	out := doc.Clone()
	var conflict error
	out.Walk(func(n *Node) {
		if n.Tag != o.Tag || conflict != nil {
			return
		}
		idx := -1
		for i, c := range n.Children {
			if c.Tag != o.ChildTag {
				continue
			}
			if idx >= 0 {
				conflict = fmt.Errorf("nested: child_to_attr: %s has several <%s> children", o.Tag, o.ChildTag)
				return
			}
			if len(c.Children) > 0 || len(c.Attrs) > 0 {
				conflict = fmt.Errorf("nested: child_to_attr: <%s> is not a text leaf", o.ChildTag)
				return
			}
			idx = i
		}
		if idx < 0 {
			return
		}
		if _, clash := n.Attrs[o.ChildTag]; clash {
			conflict = fmt.Errorf("nested: child_to_attr: %s already has @%s", o.Tag, o.ChildTag)
			return
		}
		n.Attrs[o.ChildTag] = n.Children[idx].Text
		n.Children = append(n.Children[:idx], n.Children[idx+1:]...)
	})
	if conflict != nil {
		return nil, conflict
	}
	return out, nil
}

func (o ChildToAttr) String() string {
	return fmt.Sprintf("child_to_attr[%s,%s]", o.Tag, o.ChildTag)
}

// Hoist splices out an intermediate level: every child tagged ChildTag of
// an element tagged Tag is replaced by its own children. The child must
// carry no attributes or text of its own (nothing would survive the
// splice). The nested analogue of flattening/π̄.
type Hoist struct {
	Tag, ChildTag string
}

// Apply implements XOp.
func (o Hoist) Apply(doc *Node) (*Node, error) {
	out := doc.Clone()
	var conflict error
	out.Walk(func(n *Node) {
		if n.Tag != o.Tag || conflict != nil {
			return
		}
		var kids []*Node
		for _, c := range n.Children {
			if c.Tag != o.ChildTag {
				kids = append(kids, c)
				continue
			}
			if len(c.Attrs) > 0 || c.Text != "" {
				conflict = fmt.Errorf("nested: hoist: <%s> carries attributes or text", o.ChildTag)
				return
			}
			kids = append(kids, c.Children...)
		}
		n.Children = kids
	})
	if conflict != nil {
		return nil, conflict
	}
	return out, nil
}

func (o Hoist) String() string { return fmt.Sprintf("hoist[%s,%s]", o.Tag, o.ChildTag) }

// TextToAttr moves an element's text into an attribute: every element
// tagged Tag with non-empty text and no Attr attribute gains
// Attr="text" and loses the text.
type TextToAttr struct {
	Tag, Attr string
}

// Apply implements XOp.
func (o TextToAttr) Apply(doc *Node) (*Node, error) {
	if o.Attr == "" {
		return nil, fmt.Errorf("nested: text_to_attr: empty attribute")
	}
	out := doc.Clone()
	var conflict error
	out.Walk(func(n *Node) {
		if n.Tag != o.Tag || n.Text == "" || conflict != nil {
			return
		}
		if _, clash := n.Attrs[o.Attr]; clash {
			conflict = fmt.Errorf("nested: text_to_attr: %s already has @%s", o.Tag, o.Attr)
			return
		}
		n.Attrs[o.Attr] = n.Text
		n.Text = ""
	})
	if conflict != nil {
		return nil, conflict
	}
	return out, nil
}

func (o TextToAttr) String() string { return fmt.Sprintf("text_to_attr[%s,%s]", o.Tag, o.Attr) }
