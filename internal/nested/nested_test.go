package nested

import (
	"strings"
	"testing"

	"tupelo/internal/search"
)

func TestParseAndPrint(t *testing.T) {
	doc := MustParse(`
<flights>
  <flight carrier="AirEast" route="ATL29">100</flight>
  <flight carrier="JetWest" route="ATL29">200</flight>
</flights>`)
	if doc.Tag != "flights" || len(doc.Children) != 2 {
		t.Fatalf("parse shape wrong: %s", doc)
	}
	c := doc.Children[0]
	if c.Attrs["carrier"] != "AirEast" || c.Text != "100" {
		t.Fatalf("child wrong: %+v", c)
	}
	out := doc.String()
	back, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(doc) {
		t.Fatalf("print/parse round trip:\n%s\nvs\n%s", out, back)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"<a><b></a></b>",
		"<a>",
		"</a>",
		"<a/><b/>",
		"<a attr=>x</a>",
	} {
		if _, err := ParseString(bad); err == nil {
			t.Fatalf("ParseString(%q) should fail", bad)
		}
	}
}

func TestEqualUnordered(t *testing.T) {
	a := MustParse(`<r><x k="1"/><y k="2"/></r>`)
	b := MustParse(`<r><y k="2"/><x k="1"/></r>`)
	if !a.Equal(b) {
		t.Fatal("sibling order should not affect equality")
	}
	c := MustParse(`<r><x k="1"/></r>`)
	if a.Equal(c) {
		t.Fatal("different children should differ")
	}
}

func TestContains(t *testing.T) {
	have := MustParse(`<r extra="1"><x k="1">t</x><y/><z/></r>`)
	want := MustParse(`<r><x k="1"/></r>`)
	if !have.Contains(want) {
		t.Fatal("superset should contain subset")
	}
	wantText := MustParse(`<r><x>t</x></r>`)
	if !have.Contains(wantText) {
		t.Fatal("text match should hold")
	}
	miss := MustParse(`<r><x k="2"/></r>`)
	if have.Contains(miss) {
		t.Fatal("wrong attribute value should not be contained")
	}
	// Injective matching: two identical wanted children need two distinct
	// children in the state.
	dup := MustParse(`<r><x k="1"/><x k="1"/></r>`)
	if have.Contains(dup) {
		t.Fatal("duplicate children must embed injectively")
	}
}

func TestRenameTagAndAttr(t *testing.T) {
	doc := MustParse(`<r><item price="5"/><item price="7"/></r>`)
	out, err := XExpr{
		RenameTag{From: "item", To: "product"},
		RenameAttr{Tag: "product", From: "price", To: "cost"},
	}.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := MustParse(`<r><product cost="5"/><product cost="7"/></r>`)
	if !out.Equal(want) {
		t.Fatalf("got:\n%s", out)
	}
	if _, err := (RenameAttr{Tag: "r", From: "a", To: ""}).Apply(doc); err == nil {
		t.Fatal("empty attribute rename should fail")
	}
	clash := MustParse(`<r a="1" b="2"/>`)
	if _, err := (RenameAttr{Tag: "r", From: "a", To: "b"}).Apply(clash); err == nil {
		t.Fatal("rename onto existing attribute should fail")
	}
}

func TestAttrChildRoundTrip(t *testing.T) {
	doc := MustParse(`<flight carrier="AirEast"/>`)
	down, err := (AttrToChild{Tag: "flight", Attr: "carrier"}).Apply(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := MustParse(`<flight><carrier>AirEast</carrier></flight>`)
	if !down.Equal(want) {
		t.Fatalf("attr_to_child:\n%s", down)
	}
	up, err := (ChildToAttr{Tag: "flight", ChildTag: "carrier"}).Apply(down)
	if err != nil {
		t.Fatal(err)
	}
	if !up.Equal(doc) {
		t.Fatalf("child_to_attr did not invert attr_to_child:\n%s", up)
	}
}

func TestChildToAttrConflicts(t *testing.T) {
	several := MustParse(`<f><c>x</c><c>y</c></f>`)
	if _, err := (ChildToAttr{Tag: "f", ChildTag: "c"}).Apply(several); err == nil {
		t.Fatal("multiple children should conflict")
	}
	deep := MustParse(`<f><c><d/></c></f>`)
	if _, err := (ChildToAttr{Tag: "f", ChildTag: "c"}).Apply(deep); err == nil {
		t.Fatal("non-leaf child should conflict")
	}
	clash := MustParse(`<f c="1"><c>x</c></f>`)
	if _, err := (ChildToAttr{Tag: "f", ChildTag: "c"}).Apply(clash); err == nil {
		t.Fatal("existing attribute should conflict")
	}
}

func TestHoist(t *testing.T) {
	doc := MustParse(`<r><wrap><a/><b/></wrap><c/></r>`)
	out, err := (Hoist{Tag: "r", ChildTag: "wrap"}).Apply(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := MustParse(`<r><a/><b/><c/></r>`)
	if !out.Equal(want) {
		t.Fatalf("hoist:\n%s", out)
	}
	attred := MustParse(`<r><wrap k="1"><a/></wrap></r>`)
	if _, err := (Hoist{Tag: "r", ChildTag: "wrap"}).Apply(attred); err == nil {
		t.Fatal("hoisting an attributed wrapper should fail")
	}
}

func TestTextToAttr(t *testing.T) {
	doc := MustParse(`<price>100</price>`)
	out, err := (TextToAttr{Tag: "price", Attr: "amount"}).Apply(doc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Attrs["amount"] != "100" || out.Text != "" {
		t.Fatalf("text_to_attr:\n%s", out)
	}
	clash := MustParse(`<price amount="1">100</price>`)
	if _, err := (TextToAttr{Tag: "price", Attr: "amount"}).Apply(clash); err == nil {
		t.Fatal("existing attribute should conflict")
	}
}

func TestEvalReportsStep(t *testing.T) {
	doc := MustParse(`<r a="1" b="2"/>`)
	_, err := XExpr{
		RenameAttr{Tag: "r", From: "a", To: "x"},
		RenameAttr{Tag: "r", From: "b", To: "x"},
	}.Eval(doc)
	if err == nil || !strings.Contains(err.Error(), "step 2") {
		t.Fatalf("err = %v", err)
	}
}

// TestDiscoverRenames: the deep-web interface scenario transplanted to the
// nested model — pure tag/attribute matching.
func TestDiscoverRenames(t *testing.T) {
	src := MustParse(`<books><book title="The Hobbit" author="Tolkien"/></books>`)
	tgt := MustParse(`<library><item name="The Hobbit" writer="Tolkien"/></library>`)
	res, err := Discover(src, tgt, XOptions{Algorithm: search.RBFS})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Expr.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Contains(tgt) {
		t.Fatalf("discovered LX expression does not reach the target:\n%s", res.Expr)
	}
	if len(res.Expr) != 4 { // two tag renames + two attribute renames
		t.Fatalf("expected 4 steps, got:\n%s", res.Expr)
	}
}

// TestDiscoverStructural: attributes must move between metadata and
// structure — the nested analogue of the Fig. 1 data–metadata mappings.
func TestDiscoverStructural(t *testing.T) {
	src := MustParse(`<flights>
		<flight carrier="AirEast" cost="100"/>
	</flights>`)
	tgt := MustParse(`<flights>
		<flight cost="100"><carrier>AirEast</carrier></flight>
	</flights>`)
	res, err := Discover(src, tgt, XOptions{Algorithm: search.RBFS})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Expr.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Contains(tgt) {
		t.Fatalf("expression does not reach target:\n%s\n%s", res.Expr, got)
	}
	foundDemote := false
	for _, op := range res.Expr {
		if _, ok := op.(AttrToChild); ok {
			foundDemote = true
		}
	}
	if !foundDemote {
		t.Fatalf("expected an attr_to_child step:\n%s", res.Expr)
	}
}

// TestDiscoverHoistAndPromote: remove a wrapper level and promote a leaf.
func TestDiscoverHoistAndPromote(t *testing.T) {
	src := MustParse(`<catalog>
		<entry><data><title>Metropolis</title></data></entry>
	</catalog>`)
	tgt := MustParse(`<catalog>
		<entry title="Metropolis"/>
	</catalog>`)
	res, err := Discover(src, tgt, XOptions{Algorithm: search.RBFS})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Expr.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Contains(tgt) {
		t.Fatalf("expression does not reach target:\n%s\n%s", res.Expr, got)
	}
	t.Logf("discovered (%d states):\n%s", res.Stats.Examined, res.Expr)
}

func TestDiscoverIdentityAndErrors(t *testing.T) {
	doc := MustParse(`<r a="1"/>`)
	res, err := Discover(doc, doc.Clone(), XOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Expr) != 0 {
		t.Fatalf("identity should be empty: %s", res.Expr)
	}
	if _, err := Discover(nil, doc, XOptions{}); err == nil {
		t.Fatal("nil source should fail")
	}
	if _, err := Discover(doc, nil, XOptions{}); err == nil {
		t.Fatal("nil target should fail")
	}
	// Unreachable target value.
	tgt := MustParse(`<r a="zzz"/>`)
	if _, err := Discover(doc, tgt, XOptions{Limits: search.Limits{MaxStates: 2000}}); err == nil {
		t.Fatal("unreachable target should fail")
	}
}

func TestParseXOpRoundTrip(t *testing.T) {
	ops := []XOp{
		RenameTag{From: "a", To: "b"},
		RenameAttr{Tag: "t", From: "a", To: "b"},
		AttrToChild{Tag: "t", Attr: "a"},
		ChildToAttr{Tag: "t", ChildTag: "c"},
		Hoist{Tag: "t", ChildTag: "w"},
		TextToAttr{Tag: "t", Attr: "a"},
	}
	for _, op := range ops {
		back, err := parseXOp(op.String())
		if err != nil {
			t.Fatalf("parse %q: %v", op, err)
		}
		if back.String() != op.String() {
			t.Fatalf("round trip: %q vs %q", back, op)
		}
	}
	for _, bad := range []string{"", "x", "rename_tag[a]", "hoist[t]", "zzz[a,b]", "rename_attr[t,a]"} {
		if _, err := parseXOp(bad); err == nil {
			t.Fatalf("parseXOp(%q) should fail", bad)
		}
	}
}

func TestSizeAndTokenSets(t *testing.T) {
	doc := MustParse(`<r a="1"><c b="2">t</c></r>`)
	if doc.Size() != 4 { // 2 nodes + 2 attributes
		t.Fatalf("Size = %d, want 4", doc.Size())
	}
	if !doc.Tags()["c"] || !doc.AttrNames()["b"] || !doc.Values()["t"] || !doc.Values()["1"] {
		t.Fatal("token sets wrong")
	}
}
