// Package nested instantiates TUPELO's architecture for a second data
// model, realizing the paper's concluding claim (§7): "the architecture of
// the TUPELO system can be applied to the generation of mapping expressions
// in other mapping languages and for other data models."
//
// The model is ordered labelled trees — the XML-shaped documents of the
// deep-web sources §5.2 draws its schemas from. A document is a tree of
// elements with string attributes and text; the mapping language LX
// provides tag/attribute renaming and structural moves between attributes
// and child elements. Discovery reuses the *same* generic search core
// (package search) and the same Rosetta Stone setup: a source and a target
// critical document, goal = containment, moves instantiated from the two
// documents' tokens.
package nested

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Node is one element of a document tree. The zero value is not useful;
// build nodes with NewNode or Parse. Nodes are treated as immutable: all
// operators copy.
type Node struct {
	// Tag is the element name.
	Tag string
	// Attrs are the element's attributes.
	Attrs map[string]string
	// Text is the element's (trimmed, concatenated) character data.
	Text string
	// Children are the child elements, in document order.
	Children []*Node
}

// NewNode builds an element.
func NewNode(tag string, attrs map[string]string, text string, children ...*Node) *Node {
	n := &Node{Tag: tag, Text: text, Attrs: map[string]string{}}
	for k, v := range attrs {
		n.Attrs[k] = v
	}
	n.Children = append(n.Children, children...)
	return n
}

// Clone deep-copies the subtree.
func (n *Node) Clone() *Node {
	out := &Node{Tag: n.Tag, Text: n.Text, Attrs: make(map[string]string, len(n.Attrs))}
	for k, v := range n.Attrs {
		out.Attrs[k] = v
	}
	out.Children = make([]*Node, len(n.Children))
	for i, c := range n.Children {
		out.Children[i] = c.Clone()
	}
	return out
}

// Fingerprint returns a canonical string identifying the subtree up to
// attribute order and sibling order (documents are compared as unordered
// trees, matching the relational model's set semantics).
func (n *Node) Fingerprint() string {
	var b strings.Builder
	n.fingerprint(&b)
	return b.String()
}

func (n *Node) fingerprint(b *strings.Builder) {
	b.WriteByte('<')
	b.WriteString(n.Tag)
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(n.Attrs[k])
	}
	b.WriteByte('|')
	b.WriteString(n.Text)
	kids := make([]string, len(n.Children))
	for i, c := range n.Children {
		kids[i] = c.Fingerprint()
	}
	sort.Strings(kids)
	for _, k := range kids {
		b.WriteString(k)
	}
	b.WriteByte('>')
}

// Equal reports unordered-tree equality.
func (n *Node) Equal(m *Node) bool { return n.Fingerprint() == m.Fingerprint() }

// Contains reports whether n's subtree contains m as a structural subset:
// same tag, m's attributes present with the same values, m's text equal or
// empty, and every child of m embedded into a *distinct* child of n.
func (n *Node) Contains(m *Node) bool {
	if n.Tag != m.Tag {
		return false
	}
	for k, v := range m.Attrs {
		if n.Attrs[k] != v {
			return false
		}
	}
	if m.Text != "" && n.Text != m.Text {
		return false
	}
	used := make([]bool, len(n.Children))
	return matchChildren(n.Children, m.Children, used, 0)
}

// matchChildren finds an injective embedding of want into have.
func matchChildren(have []*Node, want []*Node, used []bool, i int) bool {
	if i == len(want) {
		return true
	}
	for j, h := range have {
		if used[j] || !h.Contains(want[i]) {
			continue
		}
		used[j] = true
		if matchChildren(have, want, used, i+1) {
			return true
		}
		used[j] = false
	}
	return false
}

// Walk visits every node of the subtree in pre-order.
func (n *Node) Walk(visit func(*Node)) {
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// Tags returns the set of element tags in the subtree.
func (n *Node) Tags() map[string]bool {
	out := map[string]bool{}
	n.Walk(func(m *Node) { out[m.Tag] = true })
	return out
}

// AttrNames returns the set of attribute names in the subtree.
func (n *Node) AttrNames() map[string]bool {
	out := map[string]bool{}
	n.Walk(func(m *Node) {
		for k := range m.Attrs {
			out[k] = true
		}
	})
	return out
}

// Values returns the set of attribute values and texts in the subtree.
func (n *Node) Values() map[string]bool {
	out := map[string]bool{}
	n.Walk(func(m *Node) {
		for _, v := range m.Attrs {
			out[v] = true
		}
		if m.Text != "" {
			out[m.Text] = true
		}
	})
	return out
}

// Size returns the number of nodes plus attributes — the |s| measure for
// the nested model.
func (n *Node) Size() int {
	total := 0
	n.Walk(func(m *Node) { total += 1 + len(m.Attrs) })
	return total
}

// Parse reads a document from XML. Only elements, attributes, and
// character data are modelled; comments and processing instructions are
// skipped.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("nested: %v", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Tag: t.Name.Local, Attrs: map[string]string{}}
			for _, a := range t.Attr {
				n.Attrs[a.Name.Local] = a.Value
			}
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			} else if root != nil {
				return nil, fmt.Errorf("nested: multiple root elements")
			} else {
				root = n
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("nested: unbalanced end element")
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				text := strings.TrimSpace(string(t))
				if text != "" {
					cur := stack[len(stack)-1]
					if cur.Text != "" {
						cur.Text += " "
					}
					cur.Text += text
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("nested: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("nested: unclosed elements")
	}
	return root, nil
}

// ParseString parses a document from a string.
func ParseString(s string) (*Node, error) { return Parse(strings.NewReader(s)) }

// MustParse is ParseString panicking on error, for fixtures.
func MustParse(s string) *Node {
	n, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return n
}

// String renders the document as indented XML.
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b, 0)
	return b.String()
}

func (n *Node) write(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	b.WriteString(indent)
	b.WriteByte('<')
	b.WriteString(n.Tag)
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, " %s=%q", k, n.Attrs[k])
	}
	if len(n.Children) == 0 && n.Text == "" {
		b.WriteString("/>\n")
		return
	}
	b.WriteByte('>')
	if n.Text != "" {
		b.WriteString(escapeText(n.Text))
	}
	if len(n.Children) > 0 {
		b.WriteByte('\n')
		for _, c := range n.Children {
			c.write(b, depth+1)
		}
		b.WriteString(indent)
	}
	fmt.Fprintf(b, "</%s>\n", n.Tag)
}

func escapeText(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	return strings.ReplaceAll(s, ">", "&gt;")
}
