package postproc

import (
	"fmt"
	"strings"
)

// Parse reads a predicate in the textual syntax produced by
// Predicate.String:
//
//	Route = ATL29
//	Cost != ""
//	Carrier in (AirEast, JetWest)
//	absent(TotalCost)
//	not absent(TotalCost) and Route = ATL29
//	(a = 1 or b = 2) and not c = 3
//
// "and" binds tighter than "or"; "not" binds tightest. Bare tokens may not
// contain whitespace or syntax characters; quote them with double quotes
// and backslash escapes otherwise.
func Parse(src string) (Predicate, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	pred, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("postproc: unexpected %q after predicate", p.peek().text)
	}
	return pred, nil
}

// MustParse is Parse panicking on error, for fixed predicates.
func MustParse(src string) Predicate {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type tokKind int

const (
	tokWord tokKind = iota // bare or quoted token
	tokEq                  // =
	tokNeq                 // !=
	tokLParen
	tokRParen
	tokComma
	tokEOF
)

type token struct {
	kind   tokKind
	text   string
	quoted bool
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "("})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")"})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, text: ","})
			i++
		case c == '=':
			toks = append(toks, token{kind: tokEq, text: "="})
			i++
		case c == '!':
			if i+1 >= len(src) || src[i+1] != '=' {
				return nil, fmt.Errorf("postproc: stray '!' at offset %d", i)
			}
			toks = append(toks, token{kind: tokNeq, text: "!="})
			i += 2
		case c == '"':
			i++
			var b strings.Builder
			closed := false
			for i < len(src) {
				switch src[i] {
				case '\\':
					if i+1 >= len(src) {
						return nil, fmt.Errorf("postproc: dangling escape")
					}
					b.WriteByte(src[i+1])
					i += 2
				case '"':
					i++
					closed = true
				default:
					b.WriteByte(src[i])
					i++
				}
				if closed {
					break
				}
			}
			if !closed {
				return nil, fmt.Errorf("postproc: unterminated quote")
			}
			toks = append(toks, token{kind: tokWord, text: b.String(), quoted: true})
		default:
			start := i
			for i < len(src) && !strings.ContainsRune(" \t\n\r()=!,\"", rune(src[i])) {
				i++
			}
			toks = append(toks, token{kind: tokWord, text: src[start:i]})
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.eof() {
		return token{kind: tokEOF, text: "<eof>"}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

// keyword reports whether the next token is the given unquoted keyword.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	return !p.eof() && t.kind == tokWord && !t.quoted && t.text == kw
}

func (p *parser) parseOr() (Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Predicate, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = And{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseFactor() (Predicate, error) {
	if p.keyword("not") {
		p.next()
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Not{P: inner}, nil
	}
	if p.peek().kind == tokLParen {
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("postproc: missing ')'")
		}
		p.next()
		return inner, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Predicate, error) {
	t := p.next()
	if t.kind != tokWord {
		return nil, fmt.Errorf("postproc: expected attribute or keyword, got %q", t.text)
	}
	if t.text == "absent" && !t.quoted && p.peek().kind == tokLParen {
		p.next()
		attr := p.next()
		if attr.kind != tokWord {
			return nil, fmt.Errorf("postproc: absent() needs an attribute")
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("postproc: absent(%s missing ')'", attr.text)
		}
		p.next()
		return Absent{Attr: attr.text}, nil
	}
	switch op := p.next(); op.kind {
	case tokEq:
		v := p.next()
		if v.kind != tokWord {
			return nil, fmt.Errorf("postproc: %s = needs a value", t.text)
		}
		return Eq{Attr: t.text, Value: v.text}, nil
	case tokNeq:
		v := p.next()
		if v.kind != tokWord {
			return nil, fmt.Errorf("postproc: %s != needs a value", t.text)
		}
		return Neq{Attr: t.text, Value: v.text}, nil
	case tokWord:
		if op.text != "in" || op.quoted {
			return nil, fmt.Errorf("postproc: expected =, != or in after %q", t.text)
		}
		if p.peek().kind != tokLParen {
			return nil, fmt.Errorf("postproc: %s in needs '('", t.text)
		}
		p.next()
		var values []string
		for {
			v := p.next()
			if v.kind != tokWord {
				return nil, fmt.Errorf("postproc: bad value in %s in (...)", t.text)
			}
			values = append(values, v.text)
			sep := p.next()
			if sep.kind == tokRParen {
				break
			}
			if sep.kind != tokComma {
				return nil, fmt.Errorf("postproc: expected ',' or ')' in %s in (...)", t.text)
			}
		}
		return In{Attr: t.text, Values: values}, nil
	default:
		return nil, fmt.Errorf("postproc: expected operator after %q, got %q", t.text, op.text)
	}
}
