// Package postproc implements the post-processing stage of TUPELO mappings.
// The language L deliberately omits relational selection: "We view
// application of selections (σ) as a post-processing step to filter mapping
// results according to external criteria" (§2.1 of "Data Mapping as
// Search"). A σ-free mapping therefore lands on a superset of the target —
// this package supplies the σ: boolean predicates over tuples, a small
// textual predicate language, and Conform, which shapes a mapped database
// onto a target schema (projection + relation trimming).
package postproc

import (
	"fmt"

	"tupelo/internal/relation"
)

// Predicate decides whether a tuple of a relation satisfies an external
// criterion.
type Predicate interface {
	// Eval evaluates the predicate on row i of r.
	Eval(r *relation.Relation, i int) (bool, error)
	// String renders the predicate in the syntax Parse understands.
	String() string
}

// Eq is "attr = value".
type Eq struct {
	Attr, Value string
}

// Eval implements Predicate.
func (p Eq) Eval(r *relation.Relation, i int) (bool, error) {
	v, ok := r.Value(i, p.Attr)
	if !ok {
		return false, fmt.Errorf("postproc: %s has no attribute %q", r.Name(), p.Attr)
	}
	return v == p.Value, nil
}

func (p Eq) String() string { return fmt.Sprintf("%s = %s", quote(p.Attr), quote(p.Value)) }

// Neq is "attr != value".
type Neq struct {
	Attr, Value string
}

// Eval implements Predicate.
func (p Neq) Eval(r *relation.Relation, i int) (bool, error) {
	v, ok := r.Value(i, p.Attr)
	if !ok {
		return false, fmt.Errorf("postproc: %s has no attribute %q", r.Name(), p.Attr)
	}
	return v != p.Value, nil
}

func (p Neq) String() string { return fmt.Sprintf("%s != %s", quote(p.Attr), quote(p.Value)) }

// In is "attr in (v1, v2, ...)".
type In struct {
	Attr   string
	Values []string
}

// Eval implements Predicate.
func (p In) Eval(r *relation.Relation, i int) (bool, error) {
	v, ok := r.Value(i, p.Attr)
	if !ok {
		return false, fmt.Errorf("postproc: %s has no attribute %q", r.Name(), p.Attr)
	}
	for _, cand := range p.Values {
		if v == cand {
			return true, nil
		}
	}
	return false, nil
}

func (p In) String() string {
	out := quote(p.Attr) + " in ("
	for i, v := range p.Values {
		if i > 0 {
			out += ", "
		}
		out += quote(v)
	}
	return out + ")"
}

// Absent is "absent(attr)": true when the tuple holds the absent value.
type Absent struct {
	Attr string
}

// Eval implements Predicate.
func (p Absent) Eval(r *relation.Relation, i int) (bool, error) {
	v, ok := r.Value(i, p.Attr)
	if !ok {
		return false, fmt.Errorf("postproc: %s has no attribute %q", r.Name(), p.Attr)
	}
	return v == "", nil
}

func (p Absent) String() string { return fmt.Sprintf("absent(%s)", quote(p.Attr)) }

// Not negates a predicate.
type Not struct {
	P Predicate
}

// Eval implements Predicate.
func (p Not) Eval(r *relation.Relation, i int) (bool, error) {
	v, err := p.P.Eval(r, i)
	return !v, err
}

func (p Not) String() string { return fmt.Sprintf("not (%s)", p.P) }

// And conjoins predicates.
type And struct {
	L, R Predicate
}

// Eval implements Predicate.
func (p And) Eval(r *relation.Relation, i int) (bool, error) {
	l, err := p.L.Eval(r, i)
	if err != nil || !l {
		return false, err
	}
	return p.R.Eval(r, i)
}

func (p And) String() string { return fmt.Sprintf("(%s and %s)", p.L, p.R) }

// Or disjoins predicates.
type Or struct {
	L, R Predicate
}

// Eval implements Predicate.
func (p Or) Eval(r *relation.Relation, i int) (bool, error) {
	l, err := p.L.Eval(r, i)
	if err != nil || l {
		return l, err
	}
	return p.R.Eval(r, i)
}

func (p Or) String() string { return fmt.Sprintf("(%s or %s)", p.L, p.R) }

// Select applies σ_pred to the named relation, keeping satisfying tuples.
func Select(db *relation.Database, rel string, pred Predicate) (*relation.Database, error) {
	r, ok := db.Relation(rel)
	if !ok {
		return nil, fmt.Errorf("postproc: no relation %q", rel)
	}
	out, err := relation.New(rel, r.Attrs())
	if err != nil {
		return nil, err
	}
	for i := 0; i < r.Len(); i++ {
		keep, err := pred.Eval(r, i)
		if err != nil {
			return nil, err
		}
		if keep {
			out, err = out.Insert(r.Row(i))
			if err != nil {
				return nil, err
			}
		}
	}
	return db.WithRelation(out), nil
}

// ConformOptions tunes Conform.
type ConformOptions struct {
	// DropAbsentRows removes tuples holding the absent value in any
	// retained column (the typical residue of ↑ and λ-undefined tuples).
	DropAbsentRows bool
}

// Conform shapes a mapped database onto a target schema: relations the
// target does not name are removed, each remaining relation is projected
// onto the target's attributes (failing if one is missing), and absent-rows
// are optionally dropped. Conform implements the mechanical part of the
// paper's post-processing; content-based filtering needs Select with an
// external criterion.
func Conform(db, target *relation.Database, opts ConformOptions) (*relation.Database, error) {
	var rels []*relation.Relation
	for _, t := range target.Relations() {
		r, ok := db.Relation(t.Name())
		if !ok {
			return nil, fmt.Errorf("postproc: mapped database lacks relation %q", t.Name())
		}
		proj, err := r.Project(t.Attrs())
		if err != nil {
			return nil, fmt.Errorf("postproc: conforming %s: %v", t.Name(), err)
		}
		if opts.DropAbsentRows {
			trimmed, err := relation.New(proj.Name(), proj.Attrs())
			if err != nil {
				return nil, err
			}
			for i := 0; i < proj.Len(); i++ {
				row := proj.Row(i)
				hasAbsent := false
				for _, v := range row {
					if v == "" {
						hasAbsent = true
						break
					}
				}
				if !hasAbsent {
					trimmed, err = trimmed.Insert(row)
					if err != nil {
						return nil, err
					}
				}
			}
			proj = trimmed
		}
		rels = append(rels, proj)
	}
	return relation.NewDatabase(rels...)
}

// quote renders a token, quoting when it contains syntax characters.
func quote(s string) string {
	if s == "" || containsAny(s, " \t\n\r()=!,\"\\") || isKeyword(s) {
		var b []byte
		b = append(b, '"')
		for i := 0; i < len(s); i++ {
			if s[i] == '"' || s[i] == '\\' {
				b = append(b, '\\')
			}
			// Append the raw byte: string(s[i]) would re-encode bytes
			// ≥ 0x80 as two-byte runes and corrupt non-ASCII values.
			b = append(b, s[i])
		}
		b = append(b, '"')
		return string(b)
	}
	return s
}

func containsAny(s, chars string) bool {
	for i := 0; i < len(s); i++ {
		for j := 0; j < len(chars); j++ {
			if s[i] == chars[j] {
				return true
			}
		}
	}
	return false
}

func isKeyword(s string) bool {
	switch s {
	case "and", "or", "not", "in", "absent":
		return true
	}
	return false
}
