package postproc

import "testing"

// FuzzParse checks that the predicate parser never panics and that every
// accepted predicate survives a print → parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"Carrier = AirEast",
		"Cost != \"\"",
		"Route in (ATL29, ORD17)",
		"absent(TotalCost)",
		"not absent(X) and A = 1",
		"(a = 1 or b = 2) and not c = 3",
		`"quoted attr" = "quoted value"`,
		"a = ",
		"in in (in)",
		"not not not x = y",
		"absent(absent)",
		"a in ()",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		pred, err := Parse(src)
		if err != nil {
			return
		}
		printed := pred.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", printed, err)
		}
		if back.String() != printed {
			t.Fatalf("print/parse not stable: %q vs %q", back.String(), printed)
		}
	})
}
