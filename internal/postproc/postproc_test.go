package postproc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tupelo/internal/fira"
	"tupelo/internal/relation"
)

func prices() *relation.Database {
	return relation.MustDatabase(
		relation.MustNew("Prices", []string{"Carrier", "Route", "Cost"},
			relation.Tuple{"AirEast", "ATL29", "100"},
			relation.Tuple{"JetWest", "ATL29", "200"},
			relation.Tuple{"AirEast", "ORD17", "110"},
			relation.Tuple{"Ghost", "XXX", ""},
		),
	)
}

func TestSelectEq(t *testing.T) {
	out, err := Select(prices(), "Prices", Eq{Attr: "Carrier", Value: "AirEast"})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := out.Relation("Prices")
	if r.Len() != 2 {
		t.Fatalf("σ_{Carrier=AirEast} kept %d rows, want 2", r.Len())
	}
}

func TestSelectComposite(t *testing.T) {
	pred := And{
		L: Eq{Attr: "Carrier", Value: "AirEast"},
		R: Not{P: Eq{Attr: "Route", Value: "ORD17"}},
	}
	out, err := Select(prices(), "Prices", pred)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := out.Relation("Prices")
	if r.Len() != 1 {
		t.Fatalf("kept %d rows, want 1", r.Len())
	}
	v, _ := r.Value(0, "Route")
	if v != "ATL29" {
		t.Fatalf("kept wrong row: %v", r.Row(0))
	}
}

func TestSelectInOrAbsent(t *testing.T) {
	pred := Or{
		L: In{Attr: "Route", Values: []string{"ORD17"}},
		R: Absent{Attr: "Cost"},
	}
	out, err := Select(prices(), "Prices", pred)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := out.Relation("Prices")
	if r.Len() != 2 { // the ORD17 row and the absent-cost row
		t.Fatalf("kept %d rows, want 2:\n%s", r.Len(), r)
	}
}

func TestSelectErrors(t *testing.T) {
	if _, err := Select(prices(), "NoSuch", Eq{Attr: "A", Value: "x"}); err == nil {
		t.Fatal("missing relation should fail")
	}
	if _, err := Select(prices(), "Prices", Eq{Attr: "NoSuch", Value: "x"}); err == nil {
		t.Fatal("missing attribute should fail")
	}
	for _, p := range []Predicate{
		Neq{Attr: "NoSuch", Value: "x"},
		In{Attr: "NoSuch"},
		Absent{Attr: "NoSuch"},
		Not{P: Eq{Attr: "NoSuch", Value: "x"}},
		And{L: Eq{Attr: "Carrier", Value: "AirEast"}, R: Absent{Attr: "NoSuch"}},
		Or{L: Eq{Attr: "Carrier", Value: "zzz"}, R: Absent{Attr: "NoSuch"}},
	} {
		if _, err := Select(prices(), "Prices", p); err == nil {
			t.Fatalf("%s on missing attribute should fail", p)
		}
	}
}

func TestConform(t *testing.T) {
	// A mapped superset: extra relation, extra column, an absent-valued row.
	mapped := relation.MustDatabase(
		relation.MustNew("Prices", []string{"Carrier", "Route", "Cost", "Junk"},
			relation.Tuple{"AirEast", "ATL29", "100", "j"},
			relation.Tuple{"AirEast", "Fee", "", "j"},
		),
		relation.MustNew("Leftover", []string{"X"}, relation.Tuple{"1"}),
	)
	target := relation.MustDatabase(
		relation.MustNew("Prices", []string{"Carrier", "Route", "Cost"}),
	)
	out, err := Conform(mapped, target, ConformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.Relation("Leftover"); ok {
		t.Fatal("Conform should drop relations the target lacks")
	}
	r, _ := out.Relation("Prices")
	if r.Arity() != 3 || r.Len() != 2 {
		t.Fatalf("Conform kept %d×%d", r.Len(), r.Arity())
	}
	out, err = Conform(mapped, target, ConformOptions{DropAbsentRows: true})
	if err != nil {
		t.Fatal(err)
	}
	r, _ = out.Relation("Prices")
	if r.Len() != 1 {
		t.Fatalf("DropAbsentRows kept %d rows, want 1", r.Len())
	}
}

func TestConformErrors(t *testing.T) {
	mapped := relation.MustDatabase(
		relation.MustNew("Prices", []string{"Carrier"}),
	)
	missingRel := relation.MustDatabase(relation.MustNew("Other", []string{"A"}))
	if _, err := Conform(mapped, missingRel, ConformOptions{}); err == nil {
		t.Fatal("missing relation should fail")
	}
	missingAttr := relation.MustDatabase(relation.MustNew("Prices", []string{"Cost"}))
	if _, err := Conform(mapped, missingAttr, ConformOptions{}); err == nil {
		t.Fatal("missing attribute should fail")
	}
}

// TestConformAfterMapping closes the paper's loop: a σ-free mapping lands
// on a superset (A→B of Fig. 1); Conform plus a Select recover the exact
// target.
func TestConformAfterMapping(t *testing.T) {
	flightsA := relation.MustDatabase(
		relation.MustNew("Flights", []string{"Carrier", "Fee", "ATL29", "ORD17"},
			relation.Tuple{"AirEast", "15", "100", "110"},
			relation.Tuple{"JetWest", "16", "200", "220"},
		),
	)
	flightsB := relation.MustDatabase(
		relation.MustNew("Prices", []string{"Carrier", "Route", "Cost", "AgentFee"},
			relation.Tuple{"AirEast", "ATL29", "100", "15"},
			relation.Tuple{"JetWest", "ATL29", "200", "16"},
			relation.Tuple{"AirEast", "ORD17", "110", "15"},
			relation.Tuple{"JetWest", "ORD17", "220", "16"},
		),
	)
	mapped, err := fira.MustParse(`
		demote[Flights]
		deref[Flights,_ATT->Cost]
		rename_att[Flights,_ATT->Route]
		drop[Flights,_REL]
		rename_att[Flights,Fee->AgentFee]
		drop[Flights,ATL29]
		drop[Flights,ORD17]
		rename_rel[Flights->Prices]
	`).Eval(flightsA, nil)
	if err != nil {
		t.Fatal(err)
	}
	// External criterion: routes are the demoted attribute names ATL29 and
	// ORD17 — exactly the σ the paper leaves to post-processing.
	filtered, err := Select(mapped, "Prices", MustParse("Route in (ATL29, ORD17)"))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Conform(filtered, flightsB, ConformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Equal(flightsB) {
		t.Fatalf("σ + conform did not recover FlightsB exactly:\n%s", exact)
	}
}

func TestParseTable(t *testing.T) {
	cases := []struct {
		src  string
		keep int // rows of prices() kept
	}{
		{"Carrier = AirEast", 2},
		{"Carrier != AirEast", 2},
		{"Route in (ATL29, ORD17)", 3},
		{"absent(Cost)", 1},
		{"not absent(Cost)", 3},
		{"Carrier = AirEast and Route = ATL29", 1},
		{"Carrier = AirEast or Carrier = JetWest", 3},
		{"(Carrier = AirEast or Carrier = JetWest) and Route = ATL29", 2},
		{"not (Carrier = AirEast or Carrier = JetWest)", 1},
		{`Carrier = "AirEast"`, 2},
		{"Carrier = AirEast and Route = ATL29 or Carrier = Ghost", 2}, // and binds tighter
	}
	for _, tc := range cases {
		t.Run(tc.src, func(t *testing.T) {
			pred, err := Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			out, err := Select(prices(), "Prices", pred)
			if err != nil {
				t.Fatal(err)
			}
			r, _ := out.Relation("Prices")
			if r.Len() != tc.keep {
				t.Fatalf("kept %d rows, want %d", r.Len(), tc.keep)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"Carrier",
		"Carrier =",
		"= AirEast",
		"Carrier ! AirEast",
		"Carrier in ATL29",
		"Carrier in (",
		"Carrier in ()",
		"Carrier in (a b)",
		"absent(",
		"absent(Cost",
		"(Carrier = x",
		"Carrier = x extra",
		"not",
		`Carrier = "unterminated`,
		`Carrier = "dangling\`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

// Parse(pred.String()) must reproduce the predicate's behaviour.
func TestPropertyParsePrintRoundTrip(t *testing.T) {
	db := prices()
	genPred := func(rng *rand.Rand) Predicate {
		attrs := []string{"Carrier", "Route", "Cost"}
		vals := []string{"AirEast", "ATL29", "100", "", "weird value", `qu"ote`}
		var gen func(depth int) Predicate
		gen = func(depth int) Predicate {
			if depth <= 0 || rng.Intn(3) == 0 {
				switch rng.Intn(4) {
				case 0:
					return Eq{Attr: attrs[rng.Intn(len(attrs))], Value: vals[rng.Intn(len(vals))]}
				case 1:
					return Neq{Attr: attrs[rng.Intn(len(attrs))], Value: vals[rng.Intn(len(vals))]}
				case 2:
					return In{Attr: attrs[rng.Intn(len(attrs))], Values: []string{vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))]}}
				default:
					return Absent{Attr: attrs[rng.Intn(len(attrs))]}
				}
			}
			switch rng.Intn(3) {
			case 0:
				return Not{P: gen(depth - 1)}
			case 1:
				return And{L: gen(depth - 1), R: gen(depth - 1)}
			default:
				return Or{L: gen(depth - 1), R: gen(depth - 1)}
			}
		}
		return gen(3)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pred := genPred(rng)
		back, err := Parse(pred.String())
		if err != nil {
			return false
		}
		r, _ := db.Relation("Prices")
		for i := 0; i < r.Len(); i++ {
			want, err1 := pred.Eval(r, i)
			got, err2 := back.Eval(r, i)
			if (err1 == nil) != (err2 == nil) || want != got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPredicateStrings(t *testing.T) {
	pred := And{
		L: Or{L: Eq{Attr: "a b", Value: `x"y`}, R: In{Attr: "in", Values: []string{"v"}}},
		R: Not{P: Absent{Attr: "c"}},
	}
	s := pred.String()
	for _, want := range []string{`"a b"`, `"x\"y"`, `"in"`, "absent(c)", "not"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String missing %q: %s", want, s)
		}
	}
}
