package postproc_test

import (
	"fmt"

	"tupelo/internal/postproc"
	"tupelo/internal/relation"
)

// ExampleSelect shows σ post-processing with a parsed predicate — the
// filtering step the paper's mapping language deliberately leaves to
// external criteria (§2.1).
func ExampleSelect() {
	db := relation.MustDatabase(
		relation.MustNew("Prices", []string{"Carrier", "Route"},
			relation.Tuple{"AirEast", "ATL29"},
			relation.Tuple{"AirEast", "Carrier"}, // demoted-metadata residue
		),
	)
	pred := postproc.MustParse("Route in (ATL29, ORD17)")
	out, _ := postproc.Select(db, "Prices", pred)
	r, _ := out.Relation("Prices")
	fmt.Println(r.Len())
	// Output: 1
}
