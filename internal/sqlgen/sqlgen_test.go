package sqlgen

import (
	"strings"
	"testing"

	"tupelo/internal/fira"
	"tupelo/internal/relation"
)

func flightsB() *relation.Database {
	return relation.MustDatabase(
		relation.MustNew("Prices", []string{"Carrier", "Route", "Cost", "AgentFee"},
			relation.Tuple{"AirEast", "ATL29", "100", "15"},
			relation.Tuple{"JetWest", "ATL29", "200", "16"},
			relation.Tuple{"AirEast", "ORD17", "110", "15"},
			relation.Tuple{"JetWest", "ORD17", "220", "16"},
		),
	)
}

func generate(t *testing.T, exprText string, db *relation.Database) *Script {
	t.Helper()
	s, err := Generate(fira.MustParse(exprText), db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenerateExample2Pipeline(t *testing.T) {
	// The paper's Example 2 (B→A) end to end.
	s := generate(t, `
		promote[Prices,Route,Cost]
		drop[Prices,Route]
		drop[Prices,Cost]
		merge[Prices,Carrier]
		rename_att[Prices,AgentFee->Fee]
		rename_rel[Prices->Flights]
	`, flightsB())
	sql := s.String()
	for _, want := range []string{
		`CASE WHEN "Route" = 'ATL29' THEN "Cost" ELSE '' END AS "ATL29"`,
		`CASE WHEN "Route" = 'ORD17' THEN "Cost" ELSE '' END AS "ORD17"`,
		`GROUP BY "Carrier"`,
		`"AgentFee" AS "Fee"`,
	} {
		if !strings.Contains(sql, want) {
			t.Fatalf("generated SQL missing %q:\n%s", want, sql)
		}
	}
	if s.Final["Flights"] == "" {
		t.Fatalf("final table for Flights missing: %v", s.Final)
	}
	if _, leftover := s.Final["Prices"]; leftover {
		t.Fatalf("renamed relation still bound: %v", s.Final)
	}
	// Statements are ';'-terminated except comments.
	for _, line := range strings.Split(strings.TrimSpace(sql), "\n") {
		if strings.HasPrefix(line, "--") {
			continue
		}
		if !strings.HasSuffix(line, ";") {
			t.Fatalf("statement not terminated: %q", line)
		}
	}
}

func TestGenerateDemoteDeref(t *testing.T) {
	flightsA := relation.MustDatabase(
		relation.MustNew("Flights", []string{"Carrier", "Fee", "ATL29", "ORD17"},
			relation.Tuple{"AirEast", "15", "100", "110"},
		),
	)
	s := generate(t, "demote[Flights]\nderef[Flights,_ATT->Cost]", flightsA)
	sql := s.String()
	for _, want := range []string{
		`SELECT 'Carrier' AS "_ATT"`,
		`UNION ALL`,
		`CROSS JOIN`,
		`'Flights' AS "_REL"`,
		`CASE WHEN "_ATT" = 'Carrier' THEN "Carrier"`,
		`WHEN "_ATT" = 'ATL29' THEN "ATL29"`,
	} {
		if !strings.Contains(sql, want) {
			t.Fatalf("generated SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestGeneratePartition(t *testing.T) {
	s := generate(t, "partition[Prices,Carrier]", flightsB())
	sql := s.String()
	if !strings.Contains(sql, `WHERE "Carrier" = 'AirEast'`) ||
		!strings.Contains(sql, `WHERE "Carrier" = 'JetWest'`) {
		t.Fatalf("partition SQL wrong:\n%s", sql)
	}
	if s.Final["AirEast"] == "" || s.Final["JetWest"] == "" {
		t.Fatalf("partition tables unbound: %v", s.Final)
	}
}

func TestGenerateApplyBuiltins(t *testing.T) {
	s := generate(t, "apply[Prices,sum:Cost,AgentFee->TotalCost]", flightsB())
	if !strings.Contains(s.String(), `(CAST("Cost" AS NUMERIC) + CAST("AgentFee" AS NUMERIC)) AS "TotalCost"`) {
		t.Fatalf("sum SQL wrong:\n%s", s)
	}
	s = generate(t, "apply[Prices,concat:Carrier,Route->Tag]", flightsB())
	if !strings.Contains(s.String(), `("Carrier" || ' ' || "Route") AS "Tag"`) {
		t.Fatalf("concat SQL wrong:\n%s", s)
	}
}

func TestGenerateUnionPadsAbsent(t *testing.T) {
	db := relation.MustDatabase(
		relation.MustNew("L", []string{"A"}, relation.Tuple{"1"}),
		relation.MustNew("R", []string{"A", "B"}, relation.Tuple{"2", "x"}),
	)
	s := generate(t, "union[L,R]", db)
	if !strings.Contains(s.String(), `'' AS "B"`) {
		t.Fatalf("union padding missing:\n%s", s)
	}
	if _, leftover := s.Final["R"]; leftover {
		t.Fatalf("consumed relation still bound: %v", s.Final)
	}
}

func TestGenerateProduct(t *testing.T) {
	db := relation.MustDatabase(
		relation.MustNew("L", []string{"A"}, relation.Tuple{"1"}),
		relation.MustNew("R", []string{"B"}, relation.Tuple{"x"}),
	)
	s := generate(t, "product[L,R]", db)
	if !strings.Contains(s.String(), `CROSS JOIN`) {
		t.Fatalf("product SQL wrong:\n%s", s)
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []struct {
		name string
		expr string
	}{
		{"unknown relation", "drop[NoSuch,A]"},
		{"drop last column", "drop[Solo,A]"},
		{"untranslatable function", "apply[Prices,lb_to_kg:Cost->Kg]"},
	}
	db := flightsB().WithRelation(relation.MustNew("Solo", []string{"A"}, relation.Tuple{"1"}))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Generate(fira.MustParse(tc.expr), db, Options{}); err == nil {
				t.Fatalf("Generate(%s) should fail", tc.expr)
			}
		})
	}
}

func TestGenerateQuoting(t *testing.T) {
	db := relation.MustDatabase(
		relation.MustNew("Weird", []string{`na"me`, "other"},
			relation.Tuple{"o'hara", "x"},
		),
	)
	s := generate(t, `rename_att[Weird,other->new]`, db)
	if !strings.Contains(s.String(), `"na""me"`) {
		t.Fatalf("identifier quoting wrong:\n%s", s)
	}
	s2 := generate(t, "promote[Weird,other,na\"me]", db)
	_ = s2 // promote over quoted column names must not panic
	s3 := generate(t, `partition[Weird,na"me]`, db)
	if !strings.Contains(s3.String(), `'o''hara'`) {
		t.Fatalf("literal quoting wrong:\n%s", s3)
	}
}

func TestGenerateCustomFuncAndPrefix(t *testing.T) {
	opts := Options{
		Funcs: map[string]SQLFunc{
			"lb_to_kg": func(args []string) (string, error) {
				return "(CAST(" + args[0] + " AS NUMERIC) * 0.45359237)", nil
			},
		},
		TempPrefix: "stage_",
	}
	s, err := Generate(fira.MustParse("apply[Prices,lb_to_kg:Cost->Kg]"), flightsB(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.String(), "stage_1") || !strings.Contains(s.String(), "0.45359237") {
		t.Fatalf("custom options ignored:\n%s", s)
	}
}

// The generator must refuse expressions whose sample evaluation fails —
// the SQL would be built against a schema that never materializes.
func TestGenerateSampleEvaluationGuard(t *testing.T) {
	if _, err := Generate(fira.MustParse("merge[Prices,NoSuch]"), flightsB(), Options{}); err == nil {
		t.Fatal("merge on missing attribute should fail generation")
	}
}
