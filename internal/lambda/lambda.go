// Package lambda implements the complex semantic functions of §4 of
// "Data Mapping as Search" (EDBT 2006).
//
// TUPELO extends its transformation language L with an operator
//
//	λ^B_{f,Ā}(R)
//
// that applies a named, black-box function f to the values of attributes Ā
// of every tuple of R and stores the result in a new attribute B. The search
// layer treats functions purely syntactically: it only checks signatures
// (arity and attribute names); the "meaning" of f lives in a Registry and is
// consulted when a mapping expression is executed.
//
// Correspondences — the user-supplied illustrations that function f maps
// source attributes Ā to target attribute B — are carried alongside critical
// instances and, as in the paper, can be serialized into TNF VALUE strings.
package lambda

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Func is a complex semantic function: a named, pure, arity-checked
// transformation of attribute values.
type Func struct {
	// Name identifies the function in mapping expressions (the symbol from
	// the countable set F of §4).
	Name string
	// Arity is the number of input values the function consumes.
	Arity int
	// Doc is a one-line description, used by tooling.
	Doc string
	// Apply computes the output value. It must be deterministic.
	Apply func(args []string) (string, error)
}

// Call applies the function after checking arity.
func (f *Func) Call(args []string) (string, error) {
	if len(args) != f.Arity {
		return "", fmt.Errorf("lambda: %s expects %d arguments, got %d", f.Name, f.Arity, len(args))
	}
	return f.Apply(args)
}

// Registry holds the complex functions available to mapping expressions.
// The zero value is an empty registry ready for use. A Registry is safe for
// concurrent use.
type Registry struct {
	mu    sync.RWMutex
	funcs map[string]*Func
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a function. It fails on nil functions, empty names,
// non-positive arity, or duplicate names.
func (r *Registry) Register(f *Func) error {
	if f == nil || f.Apply == nil {
		return fmt.Errorf("lambda: nil function")
	}
	if f.Name == "" {
		return fmt.Errorf("lambda: empty function name")
	}
	if f.Arity <= 0 {
		return fmt.Errorf("lambda: function %s has non-positive arity %d", f.Name, f.Arity)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.funcs == nil {
		r.funcs = make(map[string]*Func)
	}
	if _, dup := r.funcs[f.Name]; dup {
		return fmt.Errorf("lambda: function %s already registered", f.Name)
	}
	r.funcs[f.Name] = f
	return nil
}

// MustRegister is like Register but panics on error.
func (r *Registry) MustRegister(f *Func) {
	if err := r.Register(f); err != nil {
		panic(err)
	}
}

// Lookup returns the named function, or false if absent.
func (r *Registry) Lookup(name string) (*Func, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.funcs[name]
	return f, ok
}

// Names returns the registered function names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.funcs))
	for name := range r.funcs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Correspondence records a user-indicated complex semantic mapping between
// source attributes and a target attribute (§4): "function Func applied to
// the values of In yields the value of Out". Rel optionally restricts the
// correspondence to a named source relation; empty means any relation whose
// schema covers In.
type Correspondence struct {
	Func string   // function name (a symbol of F)
	Rel  string   // source relation, or "" for any
	In   []string // source attributes Ā, in application order
	Out  string   // target attribute B
}

// Validate checks structural well-formedness against a registry: the
// function exists and its arity matches len(In).
func (c Correspondence) Validate(reg *Registry) error {
	if c.Func == "" {
		return fmt.Errorf("lambda: correspondence with empty function name")
	}
	if len(c.In) == 0 {
		return fmt.Errorf("lambda: correspondence %s has no input attributes", c.Func)
	}
	if c.Out == "" {
		return fmt.Errorf("lambda: correspondence %s has no output attribute", c.Func)
	}
	f, ok := reg.Lookup(c.Func)
	if !ok {
		return fmt.Errorf("lambda: unknown function %s", c.Func)
	}
	if f.Arity != len(c.In) {
		return fmt.Errorf("lambda: %s has arity %d but correspondence lists %d inputs", c.Func, f.Arity, len(c.In))
	}
	return nil
}

// String renders the correspondence in the compact annotation form the
// system stores in TNF VALUE strings (§4), e.g.
//
//	λ[f3:Cost,AgentFee->TotalCost]
//	λ[Prices/f3:Cost,AgentFee->TotalCost]
func (c Correspondence) String() string {
	var b strings.Builder
	b.WriteString("λ[")
	if c.Rel != "" {
		b.WriteString(c.Rel)
		b.WriteByte('/')
	}
	b.WriteString(c.Func)
	b.WriteByte(':')
	b.WriteString(strings.Join(c.In, ","))
	b.WriteString("->")
	b.WriteString(c.Out)
	b.WriteByte(']')
	return b.String()
}

// ParseCorrespondence parses the annotation form produced by String.
func ParseCorrespondence(s string) (Correspondence, error) {
	var c Correspondence
	orig := s
	if !strings.HasPrefix(s, "λ[") || !strings.HasSuffix(s, "]") {
		return c, fmt.Errorf("lambda: %q is not a correspondence annotation", orig)
	}
	s = strings.TrimSuffix(strings.TrimPrefix(s, "λ["), "]")
	if i := strings.IndexByte(s, '/'); i >= 0 {
		c.Rel = s[:i]
		s = s[i+1:]
	}
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return c, fmt.Errorf("lambda: %q missing function name", orig)
	}
	c.Func = s[:i]
	s = s[i+1:]
	j := strings.Index(s, "->")
	if j < 0 {
		return c, fmt.Errorf("lambda: %q missing output attribute", orig)
	}
	ins, out := s[:j], s[j+2:]
	if ins == "" || out == "" {
		return c, fmt.Errorf("lambda: %q has empty inputs or output", orig)
	}
	c.In = strings.Split(ins, ",")
	for _, a := range c.In {
		if a == "" {
			return c, fmt.Errorf("lambda: %q has an empty input attribute", orig)
		}
	}
	c.Out = out
	return c, nil
}
