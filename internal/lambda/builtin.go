package lambda

import (
	"fmt"
	"strconv"
	"strings"
)

// Builtins returns a registry pre-populated with the complex semantic
// functions used as examples in §4 of the paper (f1: name→ID lookup,
// f2: name concatenation, f3: arithmetic sum) together with the further
// function families the paper mentions (date format, weight, and financial
// conversions). They serve the examples, tests, and Experiment 3 workloads.
func Builtins() *Registry {
	r := NewRegistry()
	r.MustRegister(Sum2())
	r.MustRegister(Concat2())
	r.MustRegister(LookupTable("carrier_id", map[string]string{
		"AirEast": "123",
		"JetWest": "456",
	}))
	r.MustRegister(DateUSToISO())
	r.MustRegister(PoundsToKilograms())
	r.MustRegister(Scale("usd_to_eur", 0.85))
	r.MustRegister(Product2())
	r.MustRegister(Difference2())
	r.MustRegister(Ratio2())
	return r
}

// Ratio2 divides the first numeric value by the second (e.g. price per
// square foot). Division by zero is an error.
func Ratio2() *Func {
	return &Func{
		Name:  "ratio",
		Arity: 2,
		Doc:   "numeric ratio of two values",
		Apply: func(args []string) (string, error) {
			a, err := parseNumber(args[0])
			if err != nil {
				return "", err
			}
			b, err := parseNumber(args[1])
			if err != nil {
				return "", err
			}
			if b == 0 {
				return "", fmt.Errorf("lambda: ratio: division by zero")
			}
			return formatNumber(a / b), nil
		},
	}
}

// Sum2 is the paper's f3: the integer sum of two values (Cost + AgentFee →
// TotalCost in Example 5). Decimal inputs are accepted.
func Sum2() *Func {
	return &Func{
		Name:  "sum",
		Arity: 2,
		Doc:   "integer/decimal sum of two values (the paper's f3)",
		Apply: func(args []string) (string, error) {
			a, err := parseNumber(args[0])
			if err != nil {
				return "", err
			}
			b, err := parseNumber(args[1])
			if err != nil {
				return "", err
			}
			return formatNumber(a + b), nil
		},
	}
}

// Product2 multiplies two numeric values (e.g. price × quantity in the
// Inventory domain of Experiment 3).
func Product2() *Func {
	return &Func{
		Name:  "product",
		Arity: 2,
		Doc:   "numeric product of two values",
		Apply: func(args []string) (string, error) {
			a, err := parseNumber(args[0])
			if err != nil {
				return "", err
			}
			b, err := parseNumber(args[1])
			if err != nil {
				return "", err
			}
			return formatNumber(a * b), nil
		},
	}
}

// Difference2 subtracts the second numeric value from the first.
func Difference2() *Func {
	return &Func{
		Name:  "difference",
		Arity: 2,
		Doc:   "numeric difference of two values",
		Apply: func(args []string) (string, error) {
			a, err := parseNumber(args[0])
			if err != nil {
				return "", err
			}
			b, err := parseNumber(args[1])
			if err != nil {
				return "", err
			}
			return formatNumber(a - b), nil
		},
	}
}

// Concat2 is the paper's f2: concatenation of two values with a separating
// space (First + Last → Passenger in Example 5).
func Concat2() *Func {
	return &Func{
		Name:  "concat",
		Arity: 2,
		Doc:   "space-separated concatenation of two values (the paper's f2)",
		Apply: func(args []string) (string, error) {
			return args[0] + " " + args[1], nil
		},
	}
}

// LookupTable builds a unary function backed by a fixed table, modelling
// semantic functions that "can not be generalized from examples" (§4), such
// as the paper's f1 (Carrier → CID) or employee name → social security
// number. Unknown inputs are an error.
func LookupTable(name string, table map[string]string) *Func {
	return &Func{
		Name:  name,
		Arity: 1,
		Doc:   "fixed lookup table (the paper's f1 family)",
		Apply: func(args []string) (string, error) {
			v, ok := table[args[0]]
			if !ok {
				return "", fmt.Errorf("lambda: %s has no entry for %q", name, args[0])
			}
			return v, nil
		},
	}
}

// DateUSToISO converts MM/DD/YYYY dates to YYYY-MM-DD, one of the "date
// format conversions" of §4.
func DateUSToISO() *Func {
	return &Func{
		Name:  "date_us_to_iso",
		Arity: 1,
		Doc:   "convert MM/DD/YYYY to YYYY-MM-DD",
		Apply: func(args []string) (string, error) {
			parts := strings.Split(args[0], "/")
			if len(parts) != 3 || len(parts[2]) != 4 {
				return "", fmt.Errorf("lambda: %q is not a MM/DD/YYYY date", args[0])
			}
			mm, dd, yyyy := parts[0], parts[1], parts[2]
			if len(mm) == 1 {
				mm = "0" + mm
			}
			if len(dd) == 1 {
				dd = "0" + dd
			}
			for _, p := range []string{mm, dd, yyyy} {
				if _, err := strconv.Atoi(p); err != nil {
					return "", fmt.Errorf("lambda: %q is not a MM/DD/YYYY date", args[0])
				}
			}
			return yyyy + "-" + mm + "-" + dd, nil
		},
	}
}

// PoundsToKilograms is a weight conversion (§4's "weight conversions").
func PoundsToKilograms() *Func {
	return &Func{
		Name:  "lb_to_kg",
		Arity: 1,
		Doc:   "convert pounds to kilograms",
		Apply: func(args []string) (string, error) {
			v, err := parseNumber(args[0])
			if err != nil {
				return "", err
			}
			return formatNumber(v * 0.45359237), nil
		},
	}
}

// Scale builds a unary function multiplying its input by a fixed rate,
// modelling "international financial conversions" (§4).
func Scale(name string, rate float64) *Func {
	return &Func{
		Name:  name,
		Arity: 1,
		Doc:   fmt.Sprintf("multiply by %g", rate),
		Apply: func(args []string) (string, error) {
			v, err := parseNumber(args[0])
			if err != nil {
				return "", err
			}
			return formatNumber(v * rate), nil
		},
	}
}

func parseNumber(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("lambda: %q is not numeric", s)
	}
	return v, nil
}

// formatNumber prints integers without a decimal point and other values
// with minimal digits, so that "100"+"15" yields "115", not "115.000000".
func formatNumber(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
