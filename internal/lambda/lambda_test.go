package lambda

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	f := &Func{Name: "id", Arity: 1, Apply: func(a []string) (string, error) { return a[0], nil }}
	if err := r.Register(f); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Lookup("id")
	if !ok || got.Name != "id" {
		t.Fatal("Lookup failed")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Fatal("phantom function")
	}
	if err := r.Register(f); err == nil {
		t.Fatal("duplicate registration should fail")
	}
	if err := r.Register(nil); err == nil {
		t.Fatal("nil function should fail")
	}
	if err := r.Register(&Func{Name: "", Arity: 1, Apply: f.Apply}); err == nil {
		t.Fatal("empty name should fail")
	}
	if err := r.Register(&Func{Name: "zero", Arity: 0, Apply: f.Apply}); err == nil {
		t.Fatal("zero arity should fail")
	}
	if err := r.Register(&Func{Name: "noapply", Arity: 1}); err == nil {
		t.Fatal("missing Apply should fail")
	}
}

func TestCallArityCheck(t *testing.T) {
	f := Sum2()
	if _, err := f.Call([]string{"1"}); err == nil {
		t.Fatal("arity violation should fail")
	}
	v, err := f.Call([]string{"100", "15"})
	if err != nil || v != "115" {
		t.Fatalf("sum(100, 15) = %q, %v; want 115", v, err)
	}
}

func TestBuiltinsPaperExamples(t *testing.T) {
	reg := Builtins()

	// f3 of Example 5: Cost + AgentFee -> TotalCost.
	sum, _ := reg.Lookup("sum")
	for _, tc := range [][3]string{
		{"100", "15", "115"},
		{"200", "16", "216"},
		{"110", "15", "125"},
		{"220", "16", "236"},
	} {
		got, err := sum.Call([]string{tc[0], tc[1]})
		if err != nil || got != tc[2] {
			t.Fatalf("sum(%s, %s) = %q, %v; want %s", tc[0], tc[1], got, err, tc[2])
		}
	}
	if _, err := sum.Call([]string{"abc", "1"}); err == nil {
		t.Fatal("non-numeric sum should fail")
	}

	// f2 of Example 5: First + Last -> Passenger.
	concat, _ := reg.Lookup("concat")
	got, err := concat.Call([]string{"John", "Smith"})
	if err != nil || got != "John Smith" {
		t.Fatalf("concat = %q, %v", got, err)
	}

	// f1 of Example 5: Carrier -> CID.
	cid, _ := reg.Lookup("carrier_id")
	got, err = cid.Call([]string{"AirEast"})
	if err != nil || got != "123" {
		t.Fatalf("carrier_id(AirEast) = %q, %v; want 123", got, err)
	}
	if _, err := cid.Call([]string{"NoSuchAir"}); err == nil {
		t.Fatal("unknown carrier should fail")
	}
}

func TestDateConversion(t *testing.T) {
	reg := Builtins()
	f, _ := reg.Lookup("date_us_to_iso")
	got, err := f.Call([]string{"7/4/2006"})
	if err != nil || got != "2006-07-04" {
		t.Fatalf("date = %q, %v", got, err)
	}
	for _, bad := range []string{"2006-07-04", "7/4/06", "a/b/cdef", "7/4"} {
		if _, err := f.Call([]string{bad}); err == nil {
			t.Fatalf("date %q should fail", bad)
		}
	}
}

func TestNumericConversions(t *testing.T) {
	reg := Builtins()
	lb, _ := reg.Lookup("lb_to_kg")
	got, err := lb.Call([]string{"100"})
	if err != nil || !strings.HasPrefix(got, "45.35") {
		t.Fatalf("lb_to_kg(100) = %q, %v", got, err)
	}
	eur, _ := reg.Lookup("usd_to_eur")
	got, err = eur.Call([]string{"200"})
	if err != nil || got != "170" {
		t.Fatalf("usd_to_eur(200) = %q, %v", got, err)
	}
	prod, _ := reg.Lookup("product")
	got, err = prod.Call([]string{"12", "3"})
	if err != nil || got != "36" {
		t.Fatalf("product = %q, %v", got, err)
	}
	diff, _ := reg.Lookup("difference")
	got, err = diff.Call([]string{"12", "3"})
	if err != nil || got != "9" {
		t.Fatalf("difference = %q, %v", got, err)
	}
}

func TestCorrespondenceValidate(t *testing.T) {
	reg := Builtins()
	good := Correspondence{Func: "sum", In: []string{"Cost", "AgentFee"}, Out: "TotalCost"}
	if err := good.Validate(reg); err != nil {
		t.Fatal(err)
	}
	tests := []Correspondence{
		{Func: "", In: []string{"A"}, Out: "B"},
		{Func: "sum", In: nil, Out: "B"},
		{Func: "sum", In: []string{"A", "B"}, Out: ""},
		{Func: "nosuch", In: []string{"A"}, Out: "B"},
		{Func: "sum", In: []string{"A"}, Out: "B"}, // arity mismatch
	}
	for i, c := range tests {
		if err := c.Validate(reg); err == nil {
			t.Fatalf("case %d should fail: %+v", i, c)
		}
	}
}

func TestCorrespondenceStringParseRoundTrip(t *testing.T) {
	cases := []Correspondence{
		{Func: "sum", In: []string{"Cost", "AgentFee"}, Out: "TotalCost"},
		{Func: "f3", Rel: "Prices", In: []string{"Cost", "AgentFee"}, Out: "TotalCost"},
		{Func: "concat", In: []string{"First", "Last"}, Out: "Passenger"},
	}
	for _, c := range cases {
		s := c.String()
		back, err := ParseCorrespondence(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if !reflect.DeepEqual(back, c) {
			t.Fatalf("round trip %q: got %+v, want %+v", s, back, c)
		}
	}
}

func TestParseCorrespondenceErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"sum:Cost->Total",
		"λ[sum:Cost->Total",
		"λ[sumCostTotal]",
		"λ[sum:->Total]",
		"λ[sum:Cost->]",
		"λ[:Cost->Total]",
		"λ[sum:Cost,,Fee->Total]",
	} {
		if _, err := ParseCorrespondence(bad); err == nil {
			t.Fatalf("ParseCorrespondence(%q) should fail", bad)
		}
	}
}

func TestPropertyCorrespondenceRoundTrip(t *testing.T) {
	alpha := func(n uint8) string {
		const letters = "abcdefghijklmnop"
		return string(letters[int(n)%len(letters)]) + "x"
	}
	f := func(fn, rel, in1, in2, out uint8) bool {
		c := Correspondence{
			Func: "f" + alpha(fn),
			Rel:  alpha(rel),
			In:   []string{alpha(in1), alpha(in2)},
			Out:  alpha(out),
		}
		back, err := ParseCorrespondence(c.String())
		return err == nil && reflect.DeepEqual(back, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuiltinsNames(t *testing.T) {
	reg := Builtins()
	names := reg.Names()
	if len(names) < 7 {
		t.Fatalf("expected at least 7 builtins, got %v", names)
	}
	if !sortedStrings(names) {
		t.Fatalf("Names not sorted: %v", names)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}
