package heuristic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tupelo/internal/relation"
	"tupelo/internal/search"
	"tupelo/internal/tnf"
)

func target() *relation.Database {
	return relation.MustDatabase(
		relation.MustNew("Flights", []string{"Carrier", "Fee"},
			relation.Tuple{"AirEast", "15"},
			relation.Tuple{"JetWest", "16"},
		),
	)
}

func TestAllHeuristicsZeroAtGoal(t *testing.T) {
	// h(t) = 0 is what lets f = g + h stop cleanly at the goal; the paper's
	// set heuristics measure pure token differences, so identical databases
	// score zero. (h2 can be non-zero at the goal only when a token plays
	// two roles inside the target itself; the target here is role-clean.)
	tgt := target()
	for _, kind := range Kinds() {
		e := New(kind, tgt, 10)
		if got := e.Estimate(tgt.Clone()); got != 0 {
			t.Fatalf("%s at goal = %d, want 0", kind, got)
		}
	}
}

func TestH1CountsMissingTokens(t *testing.T) {
	e := New(H1, target(), 0)
	// x shares the relation name and one attribute; it is missing attribute
	// Fee and all four data values, and adds tokens of its own (which h1
	// ignores: it only counts target-side tokens missing from x).
	x := relation.MustDatabase(
		relation.MustNew("Flights", []string{"Carrier", "Price"},
			relation.Tuple{"AirEast", "99"},
		),
	)
	// Missing: REL none; ATT {Fee}; VALUE {15, 16, JetWest}.
	if got := e.Estimate(x); got != 4 {
		t.Fatalf("h1 = %d, want 4", got)
	}
}

func TestH2CountsRoleCrossings(t *testing.T) {
	// Target has value "ATL29"; state has attribute "ATL29" → one promotion
	// needed (attribute must come from data or vice versa).
	tgt := relation.MustDatabase(
		relation.MustNew("Prices", []string{"Route"},
			relation.Tuple{"ATL29"},
		),
	)
	x := relation.MustDatabase(
		relation.MustNew("Prices", []string{"ATL29"},
			relation.Tuple{"100"},
		),
	)
	e := New(H2, tgt, 0)
	// πVALUE(t) ∩ πATT(x) = {ATL29}; all other intersections empty.
	if got := e.Estimate(x); got != 1 {
		t.Fatalf("h2 = %d, want 1", got)
	}
}

func TestH3IsMax(t *testing.T) {
	tgt := target()
	x := relation.MustDatabase(
		relation.MustNew("Flights", []string{"Carrier", "Price"},
			relation.Tuple{"AirEast", "99"},
		),
	)
	h1 := New(H1, tgt, 0).Estimate(x)
	h2 := New(H2, tgt, 0).Estimate(x)
	h3 := New(H3, tgt, 0).Estimate(x)
	want := h1
	if h2 > want {
		want = h2
	}
	if h3 != want {
		t.Fatalf("h3 = %d, want max(%d, %d)", h3, h1, h2)
	}
}

func TestLevenshteinHeuristicBounds(t *testing.T) {
	tgt := target()
	const k = 11
	e := New(Levenshtein, tgt, k)
	// Disjoint database: normalized distance near 1, estimate near k.
	x := relation.MustDatabase(
		relation.MustNew("Zzz", []string{"Qq"}, relation.Tuple{"ww"}),
	)
	got := e.Estimate(x)
	if got < 1 || got > k {
		t.Fatalf("levenshtein estimate = %d, want within (0, %d]", got, k)
	}
}

func TestEuclidCountsCellDifference(t *testing.T) {
	tgt := target()
	e := New(Euclid, tgt, 0)
	// Same database minus one tuple: vector differs in exactly 2 triples
	// (the two cells of the dropped tuple), each by count 1 → √2 ≈ 1.41 → 1.
	x := relation.MustDatabase(
		relation.MustNew("Flights", []string{"Carrier", "Fee"},
			relation.Tuple{"AirEast", "15"},
		),
	)
	if got := e.Estimate(x); got != 1 {
		t.Fatalf("hE = %d, want round(√2) = 1", got)
	}
}

func TestCosineRange(t *testing.T) {
	tgt := target()
	const k = 24
	e := New(Cosine, tgt, k)
	disjoint := relation.MustDatabase(
		relation.MustNew("Zzz", []string{"Qq"}, relation.Tuple{"ww"}),
	)
	if got := e.Estimate(disjoint); got != k {
		t.Fatalf("cosine on disjoint = %d, want %d", got, k)
	}
	overlap := relation.MustDatabase(
		relation.MustNew("Flights", []string{"Carrier", "Fee"},
			relation.Tuple{"AirEast", "15"},
		),
	)
	got := e.Estimate(overlap)
	if got <= 0 || got >= k {
		t.Fatalf("cosine on overlap = %d, want strictly between 0 and %d", got, k)
	}
}

func TestCosineEmptyStates(t *testing.T) {
	empty := relation.MustDatabase()
	e := New(Cosine, empty, 5)
	if got := e.Estimate(empty); got != 0 {
		t.Fatalf("cosine(∅, ∅) = %d, want 0", got)
	}
	e2 := New(Cosine, target(), 5)
	if got := e2.Estimate(empty); got != 5 {
		t.Fatalf("cosine(∅, t) = %d, want k", got)
	}
}

func TestKindStringParseRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), back, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("unknown kind should fail")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind String should be non-empty")
	}
}

func TestScaled(t *testing.T) {
	want := map[Kind]bool{
		H0: false, H1: false, H2: false, H3: false,
		Levenshtein: true, Euclid: false, EuclidNorm: true, Cosine: true,
	}
	for k, w := range want {
		if k.Scaled() != w {
			t.Fatalf("%s.Scaled() = %v, want %v", k, k.Scaled(), w)
		}
	}
}

func TestDefaultKMatchesPaperTable(t *testing.T) {
	cases := []struct {
		algo search.Algorithm
		kind Kind
		want float64
	}{
		{search.IDA, EuclidNorm, 7},
		{search.IDA, Cosine, 5},
		{search.IDA, Levenshtein, 11},
		{search.RBFS, EuclidNorm, 20},
		{search.RBFS, Cosine, 24},
		{search.RBFS, Levenshtein, 15},
		{search.IDA, H1, 1},
		{search.RBFS, H0, 1},
		{search.AStar, Cosine, 24},
	}
	for _, c := range cases {
		if got := DefaultK(c.algo, c.kind); got != c.want {
			t.Fatalf("DefaultK(%s, %s) = %g, want %g", c.algo, c.kind, got, c.want)
		}
	}
}

func TestEstimatorAccessors(t *testing.T) {
	e := New(Cosine, target(), 24)
	if e.Name() != "cosine" || e.Kind() != Cosine || e.K() != 24 {
		t.Fatalf("accessors: %s %v %g", e.Name(), e.Kind(), e.K())
	}
	// k ≤ 0 falls back to 1.
	if New(Cosine, target(), 0).K() != 1 {
		t.Fatal("zero k should default to 1")
	}
}

func TestLevenshteinDistanceTable(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"saturday", "sunday", 3},
	}
	for _, c := range cases {
		if got := LevenshteinDistance(c.a, c.b); got != c.want {
			t.Fatalf("L(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func randString(rng *rand.Rand, n int) string {
	b := make([]byte, rng.Intn(n))
	for i := range b {
		b[i] = byte('a' + rng.Intn(4))
	}
	return string(b)
}

// Levenshtein must satisfy the metric axioms.
func TestPropertyLevenshteinMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randString(rng, 12), randString(rng, 12), randString(rng, 12)
		dab := LevenshteinDistance(a, b)
		dba := LevenshteinDistance(b, a)
		dac := LevenshteinDistance(a, c)
		dcb := LevenshteinDistance(c, b)
		if dab != dba { // symmetry
			return false
		}
		if LevenshteinDistance(a, a) != 0 { // identity
			return false
		}
		if a != b && dab == 0 { // separation
			return false
		}
		return dab <= dac+dcb // triangle inequality
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Levenshtein distance is bounded by the longer string's length.
func TestPropertyLevenshteinBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randString(rng, 20), randString(rng, 20)
		d := LevenshteinDistance(a, b)
		max := len(a)
		if len(b) > max {
			max = len(b)
		}
		diff := len(a) - len(b)
		if diff < 0 {
			diff = -diff
		}
		return d >= diff && d <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func randDB(rng *rand.Rand) *relation.Database {
	n := 1 + rng.Intn(2)
	rels := make([]*relation.Relation, n)
	for i := range rels {
		attrs := []string{"A", "B"}
		r := relation.MustNew("R"+string(rune('0'+i)), attrs)
		for k := rng.Intn(4); k > 0; k-- {
			var err error
			r, err = r.Insert(relation.Tuple{
				"v" + string(rune('0'+rng.Intn(4))),
				"w" + string(rune('0'+rng.Intn(4))),
			})
			if err != nil {
				panic(err)
			}
		}
		rels[i] = r
	}
	return relation.MustDatabase(rels...)
}

// Every heuristic must be non-negative everywhere and zero for x = t
// whenever t is role-clean (no token plays two TNF roles).
func TestPropertyNonNegativeAndZeroAtSelf(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tgt := randDB(rng)
		x := randDB(rng)
		for _, kind := range Kinds() {
			e := New(kind, tgt, 7)
			if e.Estimate(x) < 0 {
				return false
			}
			if kind != H2 && e.Estimate(tgt) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Vector algebra sanity, now through the fragment-backed aggregate: the
// integer sums seedAgg maintains (x·t, |x|², |t|²) must equal the reference
// computed directly from tnf.Encode's triples.
func TestPropertyVectorAggregate(t *testing.T) {
	f := func(a, b int64) bool {
		x := randDB(rand.New(rand.NewSource(a)))
		tgt := randDB(rand.New(rand.NewSource(b)))
		tv := newTargetView(tgt)
		ag := seedAgg(x, tv, needVec)

		counts := func(db *relation.Database) map[[3]string]int64 {
			out := make(map[[3]string]int64)
			for _, tr := range tnf.Encode(db).Triples() {
				out[tr]++
			}
			return out
		}
		xv, tc := counts(x), counts(tgt)
		var dot, xSq, tSq int64
		for k, c := range xv {
			xSq += c * c
			dot += c * tc[k]
		}
		for _, c := range tc {
			tSq += c * c
		}
		return dot == ag.dot && xSq == ag.normSq && tSq == tv.normSq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
