package heuristic

import (
	"testing"

	"tupelo/internal/relation"
)

func TestExtendedKindsSeparateFromPaper(t *testing.T) {
	paper := map[Kind]bool{}
	for _, k := range Kinds() {
		paper[k] = true
	}
	for _, k := range ExtendedKinds() {
		if paper[k] {
			t.Fatalf("extended kind %s collides with the paper's set", k)
		}
		if k.String() == "" || k.String()[0] == 'K' {
			t.Fatalf("extended kind has no name: %q", k.String())
		}
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), back, err)
		}
	}
}

func TestHybridZeroAtGoal(t *testing.T) {
	tgt := target()
	e := New(Hybrid, tgt, 0)
	if got := e.Estimate(tgt.Clone()); got != 0 {
		t.Fatalf("hybrid at goal = %d, want 0", got)
	}
}

func TestHybridSeesStructuralDeficit(t *testing.T) {
	// Target: two tuples over the same token pool. State: one tuple using
	// all the tokens. Every set-based view coincides (h1 = h2 = 0), but
	// the state is a tuple short — structure only the hybrid's deficit
	// term can see.
	tgt := relation.MustDatabase(
		relation.MustNew("R", []string{"A", "B"},
			relation.Tuple{"x", "y"},
			relation.Tuple{"y", "x"},
		),
	)
	x := relation.MustDatabase(
		relation.MustNew("R", []string{"A", "B"}, relation.Tuple{"x", "y"}),
	)
	if h1 := New(H1, tgt, 0).Estimate(x); h1 != 0 {
		t.Fatalf("h1 should be blind to the missing tuple, got %d", h1)
	}
	if hy := New(Hybrid, tgt, 0).Estimate(x); hy == 0 {
		t.Fatal("hybrid should see the tuple deficit")
	}
}

func TestHybridIgnoresSurplus(t *testing.T) {
	// Containment-goal semantics: surpluses are free, so an extra relation
	// must not raise the hybrid estimate above zero at a goal superset.
	tgt := target()
	x := tgt.WithRelation(relation.MustNew("Extra", []string{"Z"}, relation.Tuple{"zz"}))
	if !x.Contains(tgt) {
		t.Fatal("test setup: x should contain the target")
	}
	if hy := New(Hybrid, tgt, 0).Estimate(x); hy != 0 {
		t.Fatalf("hybrid at a goal superset = %d, want 0", hy)
	}
}

func TestHybridAtLeastH3(t *testing.T) {
	tgt := target()
	x := relation.MustDatabase(
		relation.MustNew("Flights", []string{"Carrier", "Price"},
			relation.Tuple{"AirEast", "99"},
		),
	)
	h3 := New(H3, tgt, 0).Estimate(x)
	hy := New(Hybrid, tgt, 0).Estimate(x)
	if hy < h3 {
		t.Fatalf("hybrid (%d) should dominate h3 (%d)", hy, h3)
	}
}

func TestJaccardBounds(t *testing.T) {
	tgt := target()
	const k = 10
	e := New(Jaccard, tgt, k)
	if got := e.Estimate(tgt.Clone()); got != 0 {
		t.Fatalf("jaccard at goal = %d, want 0", got)
	}
	disjoint := relation.MustDatabase(
		relation.MustNew("Zzz", []string{"Qq"}, relation.Tuple{"ww"}),
	)
	if got := e.Estimate(disjoint); got != k {
		t.Fatalf("jaccard on disjoint = %d, want %d", got, k)
	}
	partial := relation.MustDatabase(
		relation.MustNew("Flights", []string{"Carrier", "Qq"},
			relation.Tuple{"AirEast", "ww"},
		),
	)
	got := e.Estimate(partial)
	if got <= 0 || got >= k {
		t.Fatalf("jaccard on overlap = %d, want in (0, %d)", got, k)
	}
}

func TestJaccardRoleTagged(t *testing.T) {
	// The token "X" is an attribute in the target but a value in the state;
	// role-tagged Jaccard must not count it as shared.
	tgt := relation.MustDatabase(
		relation.MustNew("R", []string{"X"}, relation.Tuple{"v"}),
	)
	x := relation.MustDatabase(
		relation.MustNew("R", []string{"A"}, relation.Tuple{"X"}),
	)
	e := New(Jaccard, tgt, 12)
	same := relation.MustDatabase(
		relation.MustNew("R", []string{"X"}, relation.Tuple{"w"}),
	)
	if e.Estimate(x) <= e.Estimate(same) {
		t.Fatalf("cross-role token scored as shared: cross=%d, same-role=%d",
			e.Estimate(x), e.Estimate(same))
	}
}

func TestJaccardEmptyBoth(t *testing.T) {
	empty := relation.MustDatabase()
	if got := New(Jaccard, empty, 5).Estimate(empty); got != 0 {
		t.Fatalf("jaccard(∅, ∅) = %d, want 0", got)
	}
}
