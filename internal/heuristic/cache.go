package heuristic

import "sync"

// Cache memoizes heuristic estimates keyed by state fingerprint. IDA and
// RBFS re-examine states across iterations and every estimate re-encodes
// the whole database into TNF, so memoization is load-bearing for both
// single runs and portfolios. A single search run uses a MapCache; a
// portfolio shares one SyncCache among all members that evaluate the same
// (heuristic, scaling constant) pair, so TNF fingerprints encoded by one
// member are free for the others.
type Cache interface {
	// Get returns the memoized estimate for the fingerprint, if present.
	Get(key string) (int, bool)
	// Put memoizes an estimate. Estimates are deterministic per
	// (heuristic, k, target), so duplicate Puts always agree and may be
	// resolved either way.
	Put(key string, v int)
}

// MapCache is a plain map-backed Cache for single-goroutine use.
type MapCache struct {
	m map[string]int
}

// NewMapCache returns an empty single-goroutine cache.
func NewMapCache() *MapCache { return &MapCache{m: make(map[string]int)} }

// Get implements Cache.
func (c *MapCache) Get(key string) (int, bool) {
	v, ok := c.m[key]
	return v, ok
}

// Put implements Cache.
func (c *MapCache) Put(key string, v int) { c.m[key] = v }

// Len returns the number of memoized estimates.
func (c *MapCache) Len() int { return len(c.m) }

// SyncCache is a sync.Map-backed Cache safe for concurrent use: the
// read-mostly, write-once-per-key access pattern of heuristic memoization
// is exactly what sync.Map is optimized for.
type SyncCache struct {
	m sync.Map
}

// NewSyncCache returns an empty concurrency-safe cache.
func NewSyncCache() *SyncCache { return &SyncCache{} }

// Get implements Cache.
func (c *SyncCache) Get(key string) (int, bool) {
	v, ok := c.m.Load(key)
	if !ok {
		return 0, false
	}
	return v.(int), true
}

// Put implements Cache.
func (c *SyncCache) Put(key string, v int) { c.m.Store(key, v) }

// Len returns the number of memoized estimates (O(n); for tests and stats).
func (c *SyncCache) Len() int {
	n := 0
	c.m.Range(func(any, any) bool { n++; return true })
	return n
}
