package heuristic

import (
	"sync"

	"tupelo/internal/obs"
)

// Cache memoizes heuristic estimates keyed by the state's compact identity
// key (a 128-bit hash of the canonical form). IDA and RBFS re-examine
// states across iterations and every estimate re-encodes the whole database
// into TNF, so memoization is load-bearing for both single runs and
// portfolios. A single search run uses a MapCache; a portfolio shares one
// SyncCache among all members that evaluate the same (heuristic, scaling
// constant) pair, so TNF fingerprints encoded by one member are free for
// the others.
type Cache interface {
	// Get returns the memoized estimate for the state key, if present.
	Get(key string) (int, bool)
	// Put memoizes an estimate. Estimates are deterministic per
	// (heuristic, k, target), so duplicate Puts always agree and may be
	// resolved either way.
	Put(key string, v int)
}

// ConcurrencySafe is the capability interface a Cache implements to declare
// whether it may be shared between goroutines. The worker pool and the
// portfolio engine consult it (through IsConcurrent) before using a cache
// from more than one goroutine: a cache that does not declare the
// capability is conservatively treated as single-goroutine and wrapped in a
// LockedCache rather than silently raced.
type ConcurrencySafe interface {
	// Concurrent reports whether Get and Put are safe to call from
	// multiple goroutines without external synchronization.
	Concurrent() bool
}

// IsConcurrent reports whether the cache declares itself safe for
// concurrent use. Caches that do not implement ConcurrencySafe are assumed
// unsafe — the conservative reading for caller-provided implementations.
func IsConcurrent(c Cache) bool {
	cs, ok := c.(ConcurrencySafe)
	return ok && cs.Concurrent()
}

// MapCache is a plain map-backed Cache for single-goroutine use.
type MapCache struct {
	m map[string]int
}

// NewMapCache returns an empty single-goroutine cache.
func NewMapCache() *MapCache { return &MapCache{m: make(map[string]int)} }

// Get implements Cache.
func (c *MapCache) Get(key string) (int, bool) {
	v, ok := c.m[key]
	return v, ok
}

// Put implements Cache.
func (c *MapCache) Put(key string, v int) { c.m[key] = v }

// Len returns the number of memoized estimates.
func (c *MapCache) Len() int { return len(c.m) }

// Concurrent implements ConcurrencySafe: a plain map races.
func (c *MapCache) Concurrent() bool { return false }

// SyncCache is a sync.Map-backed Cache safe for concurrent use: the
// read-mostly, write-once-per-key access pattern of heuristic memoization
// is exactly what sync.Map is optimized for.
type SyncCache struct {
	m sync.Map
}

// NewSyncCache returns an empty concurrency-safe cache.
func NewSyncCache() *SyncCache { return &SyncCache{} }

// Get implements Cache.
func (c *SyncCache) Get(key string) (int, bool) {
	v, ok := c.m.Load(key)
	if !ok {
		return 0, false
	}
	return v.(int), true
}

// Put implements Cache.
func (c *SyncCache) Put(key string, v int) { c.m.Store(key, v) }

// Len returns the number of memoized estimates (O(n); for tests and stats).
func (c *SyncCache) Len() int {
	n := 0
	c.m.Range(func(any, any) bool { n++; return true })
	return n
}

// Concurrent implements ConcurrencySafe.
func (c *SyncCache) Concurrent() bool { return true }

// LockedCache wraps any Cache in a mutex, upgrading a single-goroutine
// implementation to concurrency safety. Options normalization applies it
// automatically when a caller pairs a non-concurrent cache with a parallel
// worker pool — the contract violation that previously raced (concurrent
// map writes) instead of being repaired.
type LockedCache struct {
	mu    sync.Mutex
	inner Cache
}

// NewLockedCache returns inner behind a mutex. If inner is already
// concurrency-safe it is returned unchanged.
func NewLockedCache(inner Cache) Cache {
	if IsConcurrent(inner) {
		return inner
	}
	return &LockedCache{inner: inner}
}

// Get implements Cache.
func (c *LockedCache) Get(key string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Get(key)
}

// Put implements Cache.
func (c *LockedCache) Put(key string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inner.Put(key, v)
}

// Concurrent implements ConcurrencySafe.
func (c *LockedCache) Concurrent() bool { return true }

// CountingCache wraps a Cache with hit/miss/put counters and optional trace
// events, making memoization effectiveness — the quantity that decides
// whether shared portfolio caches pay off — observable. The wrapper is as
// concurrent as its inner cache; counters are atomics and the tracer is
// concurrency-safe by contract.
//
// The entries gauge counts Puts and may overcount the true size by the rare
// duplicate Put (two workers missing on the same key concurrently);
// estimates are deterministic per key so the value stored is unaffected.
type CountingCache struct {
	inner   Cache
	hits    *obs.Counter
	misses  *obs.Counter
	entries *obs.Gauge
	tracer  obs.Tracer
	label   string
}

// Instrument wraps inner so cache traffic lands in the registry under
// heuristic.cache.{hits,misses,entries} with the given label (conventionally
// `h="<kind>",k="<scale>"`), and optionally in the tracer as
// EvCacheHit/EvCacheMiss events. Both hooks may be nil; with neither, inner
// is returned unwrapped. An already-instrumented cache is returned as-is so
// layered callers (portfolio members over a shared cache) do not
// double-count.
func Instrument(inner Cache, reg *obs.Registry, label string, tracer obs.Tracer) Cache {
	if inner == nil || (reg == nil && tracer == nil) {
		return inner
	}
	if _, ok := inner.(*CountingCache); ok {
		return inner
	}
	return &CountingCache{
		inner:   inner,
		hits:    reg.Counter(obs.Name("heuristic.cache.hits", "cache", label)),
		misses:  reg.Counter(obs.Name("heuristic.cache.misses", "cache", label)),
		entries: reg.Gauge(obs.Name("heuristic.cache.entries", "cache", label)),
		tracer:  tracer,
		label:   label,
	}
}

// Get implements Cache.
func (c *CountingCache) Get(key string) (int, bool) {
	v, ok := c.inner.Get(key)
	if ok {
		c.hits.Inc()
		if c.tracer != nil {
			c.tracer.Event(obs.Event{Kind: obs.EvCacheHit, Label: c.label})
		}
	} else {
		c.misses.Inc()
		if c.tracer != nil {
			c.tracer.Event(obs.Event{Kind: obs.EvCacheMiss, Label: c.label})
		}
	}
	return v, ok
}

// Put implements Cache.
func (c *CountingCache) Put(key string, v int) {
	c.inner.Put(key, v)
	c.entries.Add(1)
}

// Concurrent implements ConcurrencySafe: as safe as the wrapped cache.
func (c *CountingCache) Concurrent() bool { return IsConcurrent(c.inner) }

// Unwrap returns the wrapped cache.
func (c *CountingCache) Unwrap() Cache { return c.inner }
