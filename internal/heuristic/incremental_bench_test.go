package heuristic

import (
	"fmt"
	"testing"

	"tupelo/internal/relation"
)

// benchPair builds a mid-sized state/target pair and one successor of the
// state (a single relation replaced), mirroring what every search expansion
// feeds the evaluator.
func benchPair() (x, succ, tgt *relation.Database) {
	mk := func(stamp string) *relation.Database {
		rels := make([]*relation.Relation, 4)
		for i := range rels {
			r := relation.MustNew(fmt.Sprintf("R%d", i), []string{"A", "B", "C"})
			for j := 0; j < 6; j++ {
				var err error
				r, err = r.Insert(relation.Tuple{
					fmt.Sprintf("%sv%d", stamp, j), fmt.Sprintf("w%d", j), fmt.Sprintf("u%d", j%3),
				})
				if err != nil {
					panic(err)
				}
			}
			rels[i] = r
		}
		return relation.MustDatabase(rels...)
	}
	x = mk("x")
	tgt = mk("t")
	r0, _ := x.Relation("R0")
	renamed, err := r0.WithAttrRenamed("A", "Z")
	if err != nil {
		panic(err)
	}
	succ, _, err = x.ReplaceRelation("R0", renamed)
	if err != nil {
		panic(err)
	}
	return x, succ, tgt
}

// BenchmarkIncrementalEstimate measures the per-successor cost of the
// delta-merged estimate — the operation the search hot path performs for
// every cache-missing successor — against BenchmarkScratchEstimate's
// re-encode-everything baseline below.
func BenchmarkIncrementalEstimate(b *testing.B) {
	x, succ, tgt := benchPair()
	e := New(Cosine, tgt, 5)
	inc, ok := AsIncremental(e)
	if !ok {
		b.Fatal("cosine must be incremental")
	}
	parent := inc.Seed(x)
	removed, added := relation.Diff(x, succ)
	d := Delta{Removed: removed, Added: added}
	// Pre-warm the successor fragment so iterations measure the merge, not
	// the one-time fragment memoization.
	v0, _ := inc.EstimateDelta(parent, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _ := inc.EstimateDelta(parent, d)
		if v != v0 {
			b.Fatalf("estimate drifted: %d != %d", v, v0)
		}
	}
}

// BenchmarkScratchEstimate is the from-scratch baseline the incremental
// path replaces; the ratio to BenchmarkIncrementalEstimate is the win.
func BenchmarkScratchEstimate(b *testing.B) {
	_, succ, tgt := benchPair()
	e := New(Cosine, tgt, 5)
	v0 := e.Estimate(succ)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := e.Estimate(succ); v != v0 {
			b.Fatalf("estimate drifted: %d != %d", v, v0)
		}
	}
}
