package heuristic

import (
	"fmt"
	"math/rand"
	"testing"

	"tupelo/internal/fira"
	"tupelo/internal/relation"
)

// allKinds is every evaluator the package can build — the paper's eight
// plus the extended kinds.
func allKinds() []Kind {
	return append(Kinds(), ExtendedKinds()...)
}

// diffRandDB builds a small random database whose tokens overlap the ones
// randChainOp proposes, so operator chains keep producing partial matches
// (the interesting regime for every heuristic).
func diffRandDB(rng *rand.Rand) *relation.Database {
	names := []string{"R", "S", "T"}
	n := 1 + rng.Intn(3)
	rels := make([]*relation.Relation, 0, n)
	for i := 0; i < n; i++ {
		arity := 1 + rng.Intn(3)
		attrs := make([]string, arity)
		for j := range attrs {
			attrs[j] = fmt.Sprintf("a%d_%d", i, j)
		}
		r := relation.MustNew(names[i], attrs)
		for k := rng.Intn(3); k > 0; k-- {
			row := make(relation.Tuple, arity)
			for j := range row {
				// Values drawn from a tiny pool so promote/deref chains can
				// collide tokens across the ATT and VALUE categories.
				row[j] = fmt.Sprintf("v%d", rng.Intn(5))
			}
			var err error
			if r, err = r.Insert(row); err != nil {
				panic(err)
			}
		}
		rels = append(rels, r)
	}
	return relation.MustDatabase(rels...)
}

// randChainOp proposes a random operator over tokens present in the state
// (and a few fresh ones). Many proposals fail their preconditions; the
// caller just skips those, exactly as the search's candidate application
// does.
func randChainOp(rng *rand.Rand, db *relation.Database) fira.Op {
	rels := db.Relations()
	r := rels[rng.Intn(len(rels))]
	attrs := r.Attrs()
	anyAttr := func() string {
		if len(attrs) == 0 {
			return "aX"
		}
		return attrs[rng.Intn(len(attrs))]
	}
	switch rng.Intn(9) {
	case 0:
		return fira.RenameRel{From: r.Name(), To: fmt.Sprintf("N%d", rng.Intn(4))}
	case 1:
		return fira.RenameAtt{Rel: r.Name(), From: anyAttr(), To: fmt.Sprintf("b%d", rng.Intn(4))}
	case 2:
		return fira.Drop{Rel: r.Name(), Attr: anyAttr()}
	case 3:
		return fira.Promote{Rel: r.Name(), NameAttr: anyAttr(), ValueAttr: anyAttr()}
	case 4:
		return fira.Demote{Rel: r.Name()}
	case 5:
		return fira.Partition{Rel: r.Name(), Attr: anyAttr()}
	case 6:
		// Two-relation ops remove two fragments and add one — the
		// multi-fragment delta path.
		o := rels[rng.Intn(len(rels))]
		return fira.Product{Left: r.Name(), Right: o.Name()}
	case 7:
		o := rels[rng.Intn(len(rels))]
		return fira.Union{Left: r.Name(), Right: o.Name()}
	default:
		return fira.Merge{Rel: r.Name(), Attr: anyAttr()}
	}
}

// TestDifferentialIncrementalEqualsScratch is the differential property test
// behind the incremental API: for every heuristic kind, walking a random
// operator chain and estimating each state by delta-merging against the
// parent's aggregate must give exactly the estimate a from-scratch
// Estimate() computes — not approximately, bit-identically, because search
// order depends on ties. The aggregate is chained (each state's aggregate
// feeds the next delta), so drift anywhere in the multiset bookkeeping
// compounds and surfaces.
func TestDifferentialIncrementalEqualsScratch(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tgt := diffRandDB(rng)
		db := diffRandDB(rng)
		for _, kind := range allKinds() {
			e := New(kind, tgt, 7)
			inc, ok := AsIncremental(e)
			if !ok {
				// H0 has nothing to compute; Levenshtein edits the whole
				// canonical string, which has no fragment decomposition.
				if kind != H0 && kind != Levenshtein {
					t.Fatalf("%s: expected incremental capability", kind)
				}
				continue
			}
			cur := db
			agg := inc.Seed(cur)
			if got, want := e.Estimate(cur), finishOf(inc, agg); got != want {
				t.Fatalf("seed %d %s: Seed/Estimate disagree at start: %d vs %d", seed, kind, want, got)
			}
			steps := 0
			for i := 0; i < 30 && steps < 12; i++ {
				op := randChainOp(rng, cur)
				next, err := op.Apply(cur, nil)
				if err != nil {
					continue // precondition failure — not a successor
				}
				steps++
				removed, added := relation.Diff(cur, next)
				got, nextAgg := inc.EstimateDelta(agg, Delta{Removed: removed, Added: added})
				want := e.Estimate(next)
				if got != want {
					t.Fatalf("seed %d %s after %s (step %d): incremental %d != scratch %d",
						seed, kind, op, steps, got, want)
				}
				cur, agg = next, nextAgg
			}
		}
	}
}

// finishOf runs EstimateDelta with an empty delta, which must be the
// identity on the aggregate: it re-finishes the parent's sums.
func finishOf(inc IncrementalEvaluator, a Agg) int {
	v, _ := inc.EstimateDelta(a, Delta{})
	return v
}

// TestDifferentialDeltaIdentity pins the empty-delta identity for every
// kind: merging no fragments must not change the estimate.
func TestDifferentialDeltaIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tgt := diffRandDB(rng)
	x := diffRandDB(rng)
	for _, kind := range allKinds() {
		e := New(kind, tgt, 5)
		inc, ok := AsIncremental(e)
		if !ok {
			continue
		}
		agg := inc.Seed(x)
		v1, a1 := inc.EstimateDelta(agg, Delta{})
		v2, _ := inc.EstimateDelta(a1, Delta{})
		if v1 != e.Estimate(x) || v1 != v2 {
			t.Fatalf("%s: empty delta changed the estimate: %d, %d, scratch %d",
				kind, v1, v2, e.Estimate(x))
		}
	}
}
