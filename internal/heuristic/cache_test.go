package heuristic

import (
	"fmt"
	"sync"
	"testing"

	"tupelo/internal/obs"
)

func TestConcurrencyCapability(t *testing.T) {
	if IsConcurrent(NewMapCache()) {
		t.Fatal("MapCache must not claim concurrency safety")
	}
	if !IsConcurrent(NewSyncCache()) {
		t.Fatal("SyncCache must claim concurrency safety")
	}
	if !IsConcurrent(NewLockedCache(NewMapCache())) {
		t.Fatal("LockedCache must claim concurrency safety")
	}
	// A bare Cache implementation without the capability is conservatively
	// treated as unsafe.
	if IsConcurrent(bareCache{}) {
		t.Fatal("capability-less cache must be treated as unsafe")
	}
}

// bareCache implements Cache but not ConcurrencySafe.
type bareCache struct{}

func (bareCache) Get(string) (int, bool) { return 0, false }
func (bareCache) Put(string, int)        {}

func TestNewLockedCachePassesThroughSafeCaches(t *testing.T) {
	sc := NewSyncCache()
	if got := NewLockedCache(sc); got != Cache(sc) {
		t.Fatal("wrapping an already-safe cache should be a no-op")
	}
}

// TestLockedCacheConcurrent would fail under -race (and with concurrent map
// write crashes) on a bare MapCache; the mutex wrapper makes the same
// traffic safe.
func TestLockedCacheConcurrent(t *testing.T) {
	c := NewLockedCache(NewMapCache())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				key := fmt.Sprintf("k%d", j%50)
				if _, ok := c.Get(key); !ok {
					c.Put(key, j%50)
				}
			}
		}(i)
	}
	wg.Wait()
	if v, ok := c.Get("k7"); !ok || v != 7 {
		t.Fatalf("Get(k7) = %d, %v", v, ok)
	}
}

func TestCountingCacheCountsHitsAndMisses(t *testing.T) {
	reg := obs.NewRegistry()
	col := obs.NewCollector()
	c := Instrument(NewMapCache(), reg, `h="cosine"`, col)
	if IsConcurrent(c) {
		t.Fatal("instrumenting must not upgrade concurrency safety")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("unexpected hit")
	}
	c.Put("a", 3)
	if v, ok := c.Get("a"); !ok || v != 3 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	c.Get("a")

	name := func(base string) string { return obs.Name(base, "cache", `h="cosine"`) }
	if got := reg.Counter(name("heuristic.cache.hits")).Value(); got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
	if got := reg.Counter(name("heuristic.cache.misses")).Value(); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
	if got := reg.Gauge(name("heuristic.cache.entries")).Value(); got != 1 {
		t.Fatalf("entries = %d, want 1", got)
	}
	if col.Count(obs.EvCacheHit) != 2 || col.Count(obs.EvCacheMiss) != 1 {
		t.Fatalf("events: %d hits, %d misses", col.Count(obs.EvCacheHit), col.Count(obs.EvCacheMiss))
	}
}

func TestInstrumentIdempotentAndNilTolerant(t *testing.T) {
	reg := obs.NewRegistry()
	inner := NewSyncCache()
	c := Instrument(inner, reg, "x", nil)
	if Instrument(c, reg, "x", nil) != c {
		t.Fatal("double instrumentation must be a no-op")
	}
	if !IsConcurrent(c) {
		t.Fatal("instrumented SyncCache must stay concurrency-safe")
	}
	if cc, ok := c.(*CountingCache); !ok || cc.Unwrap() != Cache(inner) {
		t.Fatal("Unwrap must return the inner cache")
	}
	if got := Instrument(inner, nil, "x", nil); got != Cache(inner) {
		t.Fatal("instrumenting with no hooks must return the cache unchanged")
	}
	if Instrument(nil, reg, "x", nil) != nil {
		t.Fatal("nil cache must stay nil")
	}
}
