package heuristic

import (
	"testing"

	"tupelo/internal/relation"
)

// TestCompatSurface pins the package surface that predates the Evaluator
// redesign. Callers from before the redesign construct evaluators with
// New(kind, target, k) and call Estimate; kinds round-trip through
// String/ParseKind. The assignments are compile-time checks: a signature
// change here is a source break for every existing caller, and this test is
// where that break is supposed to surface first.
func TestCompatSurface(t *testing.T) {
	// Constructor and core interface shapes are unchanged.
	var _ func(Kind, *relation.Database, float64) Evaluator = New
	var _ func() []Kind = Kinds
	var _ func() []Kind = ExtendedKinds
	var _ func() []string = KindNames
	var _ func(string) (Kind, error) = ParseKind

	// The incremental capability is strictly additive: it is discovered by
	// interface assertion, never required.
	var _ func(Evaluator) (IncrementalEvaluator, bool) = AsIncremental

	tgt := relation.MustDatabase(
		relation.MustNew("R", []string{"A"}, relation.Tuple{"x"}))
	for _, kind := range append(Kinds(), ExtendedKinds()...) {
		e := New(kind, tgt, 5)
		if e == nil {
			t.Fatalf("%s: New returned nil", kind)
		}
		if e.Kind() != kind {
			t.Fatalf("%s: Kind() = %s", kind, e.Kind())
		}
		if h := e.Estimate(tgt); h < 0 {
			t.Fatalf("%s: negative estimate %d at target", kind, h)
		}
		back, err := ParseKind(kind.String())
		if err != nil || back != kind {
			t.Fatalf("%s: String/ParseKind round-trip gave %v, %v", kind, back, err)
		}
	}

	// ParseKind errors enumerate the valid names so CLI users can self-serve.
	if _, err := ParseKind("no-such-heuristic"); err == nil {
		t.Fatal("ParseKind accepted a bogus name")
	}
}
