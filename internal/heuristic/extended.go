package heuristic

import (
	"math"

	"tupelo/internal/relation"
	"tupelo/internal/tnf"
)

// This file implements heuristics beyond the paper's §3, addressing its
// concluding open question (§7): "Successful heuristics must measure both
// content and structure. Is there a good multi-purpose search heuristic?"
// They are excluded from Kinds() — the paper's eight — and exercised by the
// ablation benchmarks and the extension experiment.

const (
	// Hybrid combines content and structure: the token-difference h1, the
	// role-crossing h2, and a shape distance over relation count, attribute
	// count, and tuple count. It dominates h3 in informativeness while
	// remaining cheap to evaluate.
	Hybrid Kind = iota + 100
	// Jaccard is a scaled Jaccard distance over the union of the three TNF
	// projections — a normalized content measure comparable to cosine but
	// set-based rather than frequency-based.
	Jaccard
)

// ExtendedKinds lists the post-paper heuristics.
func ExtendedKinds() []Kind { return []Kind{Hybrid, Jaccard} }

// extendedString names extended kinds; returns "" for paper kinds.
func extendedString(k Kind) string {
	switch k {
	case Hybrid:
		return "hybrid"
	case Jaccard:
		return "jaccard"
	default:
		return ""
	}
}

// estimateExtended dispatches the extended heuristics; called from
// Estimator.Estimate for kinds ≥ 100.
func (e *Estimator) estimateExtended(x *relation.Database) int {
	switch e.kind {
	case Hybrid:
		t := tnf.Encode(x)
		content := e.h1(t)
		role := e.h2(t)
		shape := e.shapeDistance(x)
		return content + role + shape
	case Jaccard:
		t := tnf.Encode(x)
		return e.jaccard(t)
	default:
		return 0
	}
}

// shapeDistance measures the structural *deficit* of x against the target:
// how many relations, attributes, and tuples the target has beyond what x
// holds. Only deficits count — the goal test is containment (§2.3), so a
// state may exceed the target in every dimension and still be a goal;
// penalizing surpluses would make the heuristic non-zero at goals and
// actively misleading. The deficits capture structure that content
// heuristics miss (e.g. the target needing more relations or rows than the
// state currently has).
func (e *Estimator) shapeDistance(x *relation.Database) int {
	attrs := 0
	tuples := 0
	for _, r := range x.Relations() {
		attrs += r.Arity()
		tuples += r.Len()
	}
	dRel := deficit(e.tShape.rels, x.Len())
	dAttr := deficit(e.tShape.attrs, attrs)
	dTup := deficit(e.tShape.tuples, tuples)
	max := dRel
	if dAttr > max {
		max = dAttr
	}
	if dTup > max {
		max = dTup
	}
	return max
}

// deficit returns how far have falls short of want, never negative.
func deficit(want, have int) int {
	if want > have {
		return want - have
	}
	return 0
}

// jaccard computes round(k · (1 − |X∩T| / |X∪T|)) over the union of the
// REL, ATT and VALUE token sets (role-tagged so that a token appearing as
// data in one database and metadata in the other does not count as shared).
func (e *Estimator) jaccard(x *tnf.Table) int {
	inter, union := 0, 0
	count := func(xs, ts map[string]bool) {
		for tok := range xs {
			if ts[tok] {
				inter++
			}
			union++
		}
		for tok := range ts {
			if !xs[tok] {
				union++
			}
		}
	}
	count(x.RelSet(), e.tRel)
	count(x.AttSet(), e.tAtt)
	count(x.ValueSet(), e.tVal)
	if union == 0 {
		return 0
	}
	d := 1 - float64(inter)/float64(union)
	return int(math.Round(e.k * d))
}

// shape is the target's structural profile.
type shape struct {
	rels, attrs, tuples int
}

func shapeOf(db *relation.Database) shape {
	s := shape{rels: db.Len()}
	for _, r := range db.Relations() {
		s.attrs += r.Arity()
		s.tuples += r.Len()
	}
	return s
}
