package heuristic

import "tupelo/internal/relation"

// This file declares heuristics beyond the paper's §3, addressing its
// concluding open question (§7): "Successful heuristics must measure both
// content and structure. Is there a good multi-purpose search heuristic?"
// They are excluded from Kinds() — the paper's eight — and exercised by the
// ablation benchmarks and the extension experiment. Their evaluators
// (hybridEvaluator, jaccardEvaluator) live in evaluator.go alongside the
// paper kinds'.

const (
	// Hybrid combines content and structure: the token-difference h1, the
	// role-crossing h2, and a shape distance over relation count, attribute
	// count, and tuple count. It dominates h3 in informativeness while
	// remaining cheap to evaluate.
	//
	// The shape term measures the structural *deficit* of x against the
	// target: how many relations, attributes, and tuples the target has
	// beyond what x holds. Only deficits count — the goal test is
	// containment (§2.3), so a state may exceed the target in every
	// dimension and still be a goal; penalizing surpluses would make the
	// heuristic non-zero at goals and actively misleading.
	Hybrid Kind = iota + 100
	// Jaccard is a scaled Jaccard distance over the union of the three TNF
	// projections — a normalized content measure comparable to cosine but
	// set-based rather than frequency-based. Tokens are role-tagged: a token
	// appearing as data in one database and metadata in the other does not
	// count as shared.
	Jaccard
)

// ExtendedKinds lists the post-paper heuristics.
func ExtendedKinds() []Kind { return []Kind{Hybrid, Jaccard} }

// extendedString names extended kinds; returns "" for paper kinds.
func extendedString(k Kind) string {
	switch k {
	case Hybrid:
		return "hybrid"
	case Jaccard:
		return "jaccard"
	default:
		return ""
	}
}

// deficit returns how far have falls short of want, never negative.
func deficit(want, have int) int {
	if want > have {
		return want - have
	}
	return 0
}

// shape is a database's structural profile: the three totals the Hybrid
// heuristic's deficit term compares.
type shape struct {
	rels, attrs, tuples int
}

func shapeOf(db *relation.Database) shape {
	s := shape{rels: db.Len()}
	for _, r := range db.Relations() {
		s.attrs += r.Arity()
		s.tuples += r.Len()
	}
	return s
}
