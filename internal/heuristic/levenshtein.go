package heuristic

// LevenshteinDistance returns the least number of single-character
// insertions, deletions, and substitutions transforming a into b
// (Levenshtein 1965), computed with the classic dynamic program in O(|a|·|b|)
// time and O(min(|a|,|b|)) space.
func LevenshteinDistance(a, b string) int {
	if a == b {
		return 0
	}
	// Work on bytes: TNF canonical strings are ASCII-safe for our data, and
	// byte-level distance is a valid metric regardless.
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitution
			if d := prev[j] + 1; d < m { // deletion
				m = d
			}
			if d := cur[j-1] + 1; d < m { // insertion
				m = d
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
