package heuristic

import (
	"math"

	"tupelo/internal/tnf"
)

// vector is a sparse term vector over (REL, ATT, VALUE) token triples
// (§3, "Databases as Term Vectors"). The paper's vector space has one
// dimension per triple over the token universe; only dimensions with
// non-zero counts are stored.
type vector map[[3]string]float64

// newVector counts the occurrences of each TNF row's triple.
func newVector(t *tnf.Table) vector {
	v := make(vector)
	for _, tr := range t.Triples() {
		v[tr]++
	}
	return v
}

// dot returns the inner product of two sparse vectors.
func (v vector) dot(w vector) float64 {
	if len(w) < len(v) {
		v, w = w, v
	}
	var s float64
	for k, a := range v {
		if b, ok := w[k]; ok {
			s += a * b
		}
	}
	return s
}

// norm returns the Euclidean length |v|.
func (v vector) norm() float64 {
	var s float64
	for _, a := range v {
		s += a * a
	}
	return math.Sqrt(s)
}

// euclideanDistance returns |v − w| (the paper's hE before rounding).
func (v vector) euclideanDistance(w vector) float64 {
	var s float64
	for k, a := range v {
		d := a - w[k]
		s += d * d
	}
	for k, b := range w {
		if _, seen := v[k]; !seen {
			s += b * b
		}
	}
	return math.Sqrt(s)
}

// normalizedDistance returns |v/|v| − w/|w|| (the paper's h|E| before
// scaling). A zero vector is treated as the origin.
func (v vector) normalizedDistance(vn float64, w vector, wn float64) float64 {
	div := func(x, n float64) float64 {
		if n == 0 {
			return 0
		}
		return x / n
	}
	var s float64
	for k, a := range v {
		d := div(a, vn) - div(w[k], wn)
		s += d * d
	}
	for k, b := range w {
		if _, seen := v[k]; !seen {
			d := div(b, wn)
			s += d * d
		}
	}
	return math.Sqrt(s)
}
