package heuristic

import (
	"math"
	"sort"
	"strings"

	"tupelo/internal/relation"
)

// Evaluator is a heuristic bound to a fixed target critical instance, with
// the target-side structures precomputed once. Evaluators are immutable
// after construction and safe for concurrent use by multiple goroutines.
//
// New returns one evaluator per Kind; the monolithic kind-switch estimator
// this package used to expose is gone. Callers that only evaluate states
// from scratch use this interface; callers that evaluate successors against
// their parents detect the IncrementalEvaluator capability through
// AsIncremental, the same way cache users detect ConcurrencySafe.
type Evaluator interface {
	// Kind returns the heuristic's kind.
	Kind() Kind
	// K returns the scaling constant in effect.
	K() float64
	// Name returns the heuristic's name.
	Name() string
	// Estimate computes h(x) for a database state from scratch.
	Estimate(x *relation.Database) int
}

// Delta describes how a successor state differs from its parent: the
// relations removed from the parent and those added in their place. For a
// FIRA operator application this is one replaced slot (or two collapsing
// into one for unions, one fanning out for partitions); relation.Diff
// recovers it from any copy-on-write parent/child pair by pointer
// comparison.
type Delta struct {
	Removed []*relation.Relation
	Added   []*relation.Relation
}

// Agg is an opaque per-state aggregate: the running multiset sums an
// incremental evaluator maintains so a successor's estimate is a
// delta-merge rather than a re-encoding. Aggregates are immutable once
// returned; a parent's aggregate may be read concurrently by many workers
// deriving children from it.
type Agg interface{ isAgg() }

// IncrementalEvaluator is the capability interface an Evaluator implements
// when it can evaluate a successor by delta-merging the replaced relations'
// TNF fragments against the parent's aggregate. The contract mirrors
// Cache/ConcurrencySafe: the capability is optional, detected by
// AsIncremental, and callers fall back to Estimate when it is absent.
//
// For every evaluator in this package the incremental path is exactly
// arithmetic on the same integer multiset counters Estimate computes from
// scratch, so EstimateDelta(Seed(parent), Diff(parent, child)) is
// bit-identical to Estimate(child) — the differential tests pin this.
type IncrementalEvaluator interface {
	Evaluator
	// Seed builds the aggregate for a state from scratch.
	Seed(x *relation.Database) Agg
	// EstimateDelta returns h(child) and the child's aggregate, given the
	// parent's aggregate and the parent→child delta. d.Removed must be
	// relations of the parent state (as returned by relation.Diff); parent
	// is not modified and may be shared concurrently.
	EstimateDelta(parent Agg, d Delta) (int, Agg)
}

// AsIncremental reports whether the evaluator supports incremental
// evaluation, returning the capability view if so. Evaluators that do not
// implement the capability are evaluated from scratch — the conservative
// reading for caller-provided implementations.
func AsIncremental(e Evaluator) (IncrementalEvaluator, bool) {
	ie, ok := e.(IncrementalEvaluator)
	return ie, ok
}

// New builds an evaluator for the given heuristic kind against the target.
// k is the scaling constant for the normalized heuristics; pass 0 to use
// the neutral value 1. Unscaled heuristics ignore k. The Unset kind
// resolves to Cosine, the paper's overall best.
func New(kind Kind, target *relation.Database, k float64) Evaluator {
	if kind == Unset {
		kind = Cosine
	}
	if k <= 0 {
		k = 1
	}
	b := base{kind: kind, k: k, tv: newTargetView(target)}
	switch kind {
	case H1, H2, H3:
		return &setEvaluator{b}
	case Levenshtein:
		return &levEvaluator{b}
	case Euclid, EuclidNorm, Cosine:
		return &vecEvaluator{b}
	case Hybrid:
		return &hybridEvaluator{b}
	case Jaccard:
		return &jaccardEvaluator{b}
	default:
		// H0 and any unknown kind: constant zero, as before the redesign.
		return &zeroEvaluator{b}
	}
}

// targetView is the target critical instance seen through its interned TNF
// fragments: the projection sets, term vector, canonical string, and shape
// every evaluator compares states against. Built once per New and shared,
// read-only, by every evaluation.
type targetView struct {
	rel, att, val map[relation.Symbol]bool
	tTotal        int // |rel| + |att| + |val|, the Jaccard target mass
	vec           map[relation.Triple]int
	normSq        int64
	norm          float64
	str           string
	shape         shape
}

func newTargetView(target *relation.Database) *targetView {
	tv := &targetView{
		rel: make(map[relation.Symbol]bool),
		att: make(map[relation.Symbol]bool),
		val: make(map[relation.Symbol]bool),
		vec: make(map[relation.Triple]int),
	}
	for _, r := range target.Relations() {
		f := r.TNFFragment()
		tv.rel[f.Rel] = true
		for s := range f.Atts {
			tv.att[s] = true
		}
		for s := range f.Vals {
			tv.val[s] = true
		}
		for t, c := range f.Vec {
			tv.vec[t] += c
		}
		// Triple keys are disjoint across relations, so norms add.
		tv.normSq += f.VecSq
	}
	tv.tTotal = len(tv.rel) + len(tv.att) + len(tv.val)
	tv.norm = math.Sqrt(float64(tv.normSq))
	tv.str = canonicalString(target)
	tv.shape = shapeOf(target)
	return tv
}

// canonicalString merges the sorted Parts of every fragment into the §3
// string(d) serialization — identical to tnf.Encode(db).CanonicalString()
// but assembled from the memoized per-relation pieces.
func canonicalString(db *relation.Database) string {
	var parts []string
	n := 0
	for _, r := range db.Relations() {
		fp := r.TNFFragment().Parts()
		parts = append(parts, fp...)
		for _, p := range fp {
			n += len(p)
		}
	}
	sort.Strings(parts)
	var b strings.Builder
	b.Grow(n)
	for _, p := range parts {
		b.WriteString(p)
	}
	return b.String()
}

// base carries the configuration every evaluator shares.
type base struct {
	kind Kind
	k    float64
	tv   *targetView
}

func (b *base) Kind() Kind   { return b.kind }
func (b *base) K() float64   { return b.k }
func (b *base) Name() string { return b.kind.String() }

// needs selects which aggregate counters an evaluator maintains, so each
// kind pays only for the sums its finish function reads.
type needs uint8

const (
	needSets  needs = 1 << iota // h1 and h2 membership counters
	needVec                     // term-vector dot product and squared norm
	needJac                     // Jaccard intersection and distinct counts
	needShape                   // relation/attribute/tuple totals
)

// agg is the aggregate behind Agg: the state's fragments by relation-name
// symbol plus the running sums. All counters are integers (multiset
// multiplicities and integer-valued dot products/norms), exact in int and
// int64, which is what makes removal exact and the incremental estimates
// bit-identical to from-scratch ones.
type agg struct {
	frags map[relation.Symbol]*relation.Fragment

	// needSets: h1 = target tokens missing from x; h2 = cross-category
	// role collisions. Maintained under membership flips.
	h1, h2 int
	// needVec: dot = Σ x_k·t_k, normSq = Σ x_k².
	dot, normSq int64
	// needJac: interJ = Σ_category |X ∩ T|, distinctJ = Σ_category |X|.
	interJ, distinctJ int
	// needShape: structural totals of x.
	rels, attrs, tuples int
}

func (*agg) isAgg() {}

// hasRel reports whether the state has a relation named s; relation names
// are unique, so presence in frags is membership in the REL projection.
func (a *agg) hasRel(s relation.Symbol) bool {
	_, ok := a.frags[s]
	return ok
}

// attCount sums the ATT-projection multiplicity of s over the fragments.
// Attribute and value tokens overlap across relations, so membership is a
// sum over fragments — O(|relations|), with |relations| small by the
// paper's construction (critical instances).
func (a *agg) attCount(s relation.Symbol) int {
	n := 0
	for _, f := range a.frags {
		n += f.Atts[s]
	}
	return n
}

// valCount is attCount for the VALUE projection.
func (a *agg) valCount(s relation.Symbol) int {
	n := 0
	for _, f := range a.frags {
		n += f.Vals[s]
	}
	return n
}

// fragDot returns Σ_k f.Vec[k]·t_k — the fragment's exact contribution to
// the state·target dot product (triple keys never cross fragments).
func fragDot(f *relation.Fragment, tv *targetView) int64 {
	var s int64
	for t, c := range f.Vec {
		if tc, ok := tv.vec[t]; ok {
			s += int64(c) * int64(tc)
		}
	}
	return s
}

// seedAgg builds a state's aggregate from scratch: fragments merged, sums
// computed directly from their definitions. Estimate() for incremental
// kinds is finish(seedAgg(x)), so seeding is also the reference
// implementation the delta path must agree with.
func seedAgg(x *relation.Database, tv *targetView, need needs) *agg {
	rels := x.Relations()
	a := &agg{frags: make(map[relation.Symbol]*relation.Fragment, len(rels))}
	for _, r := range rels {
		f := r.TNFFragment()
		a.frags[f.Rel] = f
	}
	if need&needVec != 0 {
		for _, f := range a.frags {
			a.normSq += f.VecSq
			a.dot += fragDot(f, tv)
		}
	}
	if need&needSets != 0 {
		for s := range tv.rel {
			if !a.hasRel(s) {
				a.h1++
			}
			if a.attCount(s) > 0 {
				a.h2++
			}
			if a.valCount(s) > 0 {
				a.h2++
			}
		}
		for s := range tv.att {
			if a.attCount(s) == 0 {
				a.h1++
			}
			if a.hasRel(s) {
				a.h2++
			}
			if a.valCount(s) > 0 {
				a.h2++
			}
		}
		for s := range tv.val {
			if a.valCount(s) == 0 {
				a.h1++
			}
			if a.hasRel(s) {
				a.h2++
			}
			if a.attCount(s) > 0 {
				a.h2++
			}
		}
	}
	if need&needJac != 0 {
		a.distinctJ += len(a.frags)
		for s := range a.frags {
			if tv.rel[s] {
				a.interJ++
			}
		}
		for _, category := range []struct {
			get func(*relation.Fragment) map[relation.Symbol]int
			t   map[relation.Symbol]bool
		}{
			{func(f *relation.Fragment) map[relation.Symbol]int { return f.Atts }, tv.att},
			{func(f *relation.Fragment) map[relation.Symbol]int { return f.Vals }, tv.val},
		} {
			distinct := make(map[relation.Symbol]bool)
			for _, f := range a.frags {
				for s := range category.get(f) {
					distinct[s] = true
				}
			}
			a.distinctJ += len(distinct)
			for s := range distinct {
				if category.t[s] {
					a.interJ++
				}
			}
		}
	}
	if need&needShape != 0 {
		a.rels = len(a.frags)
		for _, f := range a.frags {
			a.attrs += f.Arity
			a.tuples += f.Tuples
		}
	}
	return a
}

// deltaAgg derives the child aggregate from the parent's by subtracting the
// removed fragments' counters and adding the new ones. Exactness rests on
// three facts: (1) all counters are integer multiset multiplicities, so
// subtraction undoes addition with no residue; (2) Vec triple keys embed the
// relation name, so a removed fragment's counts are exactly the parent's
// counts under that name, and an added fragment lands on counts that are
// zero — the norm and dot adjustments below need no per-key parent lookups;
// (3) ATT/VALUE tokens do overlap across relations, so membership changes
// are detected by comparing the parent's summed count with the summed count
// after the net per-token delta (a membership flip adjusts h1/h2/Jaccard by
// the same ±1 the from-scratch recount would see).
func deltaAgg(p *agg, d Delta, tv *targetView, need needs) *agg {
	cp := *p
	a := &cp
	a.frags = make(map[relation.Symbol]*relation.Fragment, len(p.frags)+len(d.Added))
	for s, f := range p.frags {
		a.frags[s] = f
	}
	remF := make([]*relation.Fragment, len(d.Removed))
	for i, r := range d.Removed {
		remF[i] = r.TNFFragment()
	}
	addF := make([]*relation.Fragment, len(d.Added))
	for i, r := range d.Added {
		addF[i] = r.TNFFragment()
	}

	if need&needVec != 0 {
		for _, f := range remF {
			a.normSq -= f.VecSq
			a.dot -= fragDot(f, tv)
		}
		for _, f := range addF {
			a.normSq += f.VecSq
			a.dot += fragDot(f, tv)
		}
	}
	if need&(needSets|needJac) != 0 {
		// REL category: names are unique per database, so presence flips
		// are exactly the names not shared between removed and added.
		for _, f := range remF {
			if !containsName(addF, f.Rel) {
				a.flipRel(f.Rel, -1, tv, need)
			}
		}
		for _, f := range addF {
			if !containsName(remF, f.Rel) {
				a.flipRel(f.Rel, +1, tv, need)
			}
		}
		// ATT and VALUE categories: only tokens of changed fragments can
		// flip; their membership before/after is judged against the
		// parent's summed counts plus the net delta.
		forEachFlip(remF, addF, fragAtts, p.attCount, func(s relation.Symbol, dir int) {
			a.flipAtt(s, dir, tv, need)
		})
		forEachFlip(remF, addF, fragVals, p.valCount, func(s relation.Symbol, dir int) {
			a.flipVal(s, dir, tv, need)
		})
	}
	if need&needShape != 0 {
		for _, f := range remF {
			a.rels--
			a.attrs -= f.Arity
			a.tuples -= f.Tuples
		}
		for _, f := range addF {
			a.rels++
			a.attrs += f.Arity
			a.tuples += f.Tuples
		}
	}
	for _, f := range remF {
		delete(a.frags, f.Rel)
	}
	for _, f := range addF {
		a.frags[f.Rel] = f
	}
	return a
}

func fragAtts(f *relation.Fragment) map[relation.Symbol]int { return f.Atts }
func fragVals(f *relation.Fragment) map[relation.Symbol]int { return f.Vals }

func containsName(fs []*relation.Fragment, s relation.Symbol) bool {
	for _, f := range fs {
		if f.Rel == s {
			return true
		}
	}
	return false
}

// forEachFlip calls flip(s, ±1) for every token whose set membership in the
// chosen category changes under the delta. pcount reads the parent's summed
// multiplicity. The single-replacement case — one relation out, one in, the
// shape of almost every FIRA move — runs without allocating; multi-fragment
// deltas (union, partition) accumulate net deltas in a scratch map.
func forEachFlip(remF, addF []*relation.Fragment, get func(*relation.Fragment) map[relation.Symbol]int, pcount func(relation.Symbol) int, flip func(relation.Symbol, int)) {
	judge := func(s relation.Symbol, delta int) {
		if delta == 0 {
			return
		}
		old := pcount(s)
		if now := old + delta; (old == 0) != (now == 0) {
			if now == 0 {
				flip(s, -1)
			} else {
				flip(s, +1)
			}
		}
	}
	if len(remF) == 1 && len(addF) == 1 {
		rm, am := get(remF[0]), get(addF[0])
		for s, rc := range rm {
			judge(s, am[s]-rc)
		}
		for s, ac := range am {
			if _, dup := rm[s]; !dup {
				judge(s, ac)
			}
		}
		return
	}
	net := make(map[relation.Symbol]int)
	for _, f := range remF {
		for s, c := range get(f) {
			net[s] -= c
		}
	}
	for _, f := range addF {
		for s, c := range get(f) {
			net[s] += c
		}
	}
	for s, delta := range net {
		judge(s, delta)
	}
}

// flipRel applies the counter adjustments for the REL-projection membership
// of s changing by dir (+1 entering, −1 leaving). flipAtt and flipVal are
// its ATT/VALUE analogues; the target-side sets consulted differ per the
// definitions of h1 (same-category misses) and h2 (cross-category hits).
func (a *agg) flipRel(s relation.Symbol, dir int, tv *targetView, need needs) {
	if need&needSets != 0 {
		if tv.rel[s] {
			a.h1 -= dir
		}
		if tv.att[s] {
			a.h2 += dir
		}
		if tv.val[s] {
			a.h2 += dir
		}
	}
	if need&needJac != 0 {
		a.distinctJ += dir
		if tv.rel[s] {
			a.interJ += dir
		}
	}
}

func (a *agg) flipAtt(s relation.Symbol, dir int, tv *targetView, need needs) {
	if need&needSets != 0 {
		if tv.att[s] {
			a.h1 -= dir
		}
		if tv.rel[s] {
			a.h2 += dir
		}
		if tv.val[s] {
			a.h2 += dir
		}
	}
	if need&needJac != 0 {
		a.distinctJ += dir
		if tv.att[s] {
			a.interJ += dir
		}
	}
}

func (a *agg) flipVal(s relation.Symbol, dir int, tv *targetView, need needs) {
	if need&needSets != 0 {
		if tv.val[s] {
			a.h1 -= dir
		}
		if tv.rel[s] {
			a.h2 += dir
		}
		if tv.att[s] {
			a.h2 += dir
		}
	}
	if need&needJac != 0 {
		a.distinctJ += dir
		if tv.val[s] {
			a.interJ += dir
		}
	}
}

// zeroEvaluator is h0: constant zero, the paper's blind-search baseline.
// Also the fallback for unknown kinds, matching the old estimator.
type zeroEvaluator struct{ base }

func (e *zeroEvaluator) Estimate(*relation.Database) int { return 0 }

// setEvaluator serves H1, H2 and H3, the projection set-difference
// heuristics of §3.
type setEvaluator struct{ base }

func (e *setEvaluator) finish(a *agg) int {
	switch e.kind {
	case H1:
		return a.h1
	case H2:
		return a.h2
	default: // H3 = max(h1, h2)
		if a.h1 > a.h2 {
			return a.h1
		}
		return a.h2
	}
}

func (e *setEvaluator) Estimate(x *relation.Database) int {
	return e.finish(seedAgg(x, e.tv, needSets))
}

func (e *setEvaluator) Seed(x *relation.Database) Agg { return seedAgg(x, e.tv, needSets) }

func (e *setEvaluator) EstimateDelta(parent Agg, d Delta) (int, Agg) {
	a := deltaAgg(parent.(*agg), d, e.tv, needSets)
	return e.finish(a), a
}

// vecEvaluator serves the term-vector heuristics hE, h|E| and hcos. The
// finish functions work from the integer sums dot, |x|² and |t|²: the
// squared distance is |x|² − 2·x·t + |t|² and the cosine x·t/(|x||t|), so
// both paths — seeded and delta-merged — go through identical float
// operations on identical integers, keeping estimates bit-identical.
type vecEvaluator struct{ base }

func (e *vecEvaluator) finish(a *agg) int {
	switch e.kind {
	case Euclid:
		distSq := a.normSq - 2*a.dot + e.tv.normSq
		if distSq < 0 {
			distSq = 0 // unreachable on exact integers; defensive
		}
		return int(math.Round(math.Sqrt(float64(distSq))))
	case Cosine:
		if a.normSq == 0 || e.tv.normSq == 0 {
			if a.normSq == 0 && e.tv.normSq == 0 {
				return 0
			}
			return int(math.Round(e.k))
		}
		cos := float64(a.dot) / (math.Sqrt(float64(a.normSq)) * e.tv.norm)
		if cos > 1 {
			cos = 1
		}
		if cos < 0 {
			cos = 0
		}
		return int(math.Round(e.k * (1 - cos)))
	default: // EuclidNorm: |x/|x| − t/|t||² = 2 − 2·cos for non-zero vectors.
		if a.normSq == 0 || e.tv.normSq == 0 {
			if a.normSq == 0 && e.tv.normSq == 0 {
				return 0
			}
			// One side is the origin: the other normalizes to a unit
			// vector, so the distance is exactly 1.
			return int(math.Round(e.k))
		}
		cos := float64(a.dot) / (math.Sqrt(float64(a.normSq)) * e.tv.norm)
		if cos > 1 {
			cos = 1
		}
		return int(math.Round(e.k * math.Sqrt(2-2*cos)))
	}
}

func (e *vecEvaluator) Estimate(x *relation.Database) int {
	return e.finish(seedAgg(x, e.tv, needVec))
}

func (e *vecEvaluator) Seed(x *relation.Database) Agg { return seedAgg(x, e.tv, needVec) }

func (e *vecEvaluator) EstimateDelta(parent Agg, d Delta) (int, Agg) {
	a := deltaAgg(parent.(*agg), d, e.tv, needVec)
	return e.finish(a), a
}

// levEvaluator is hL, the normalized Levenshtein distance of canonical
// strings. It is not incremental: the edit-distance dynamic program needs
// the whole string anyway, so an aggregate would save nothing — only the
// string assembly benefits from the memoized fragment parts.
type levEvaluator struct{ base }

func (e *levEvaluator) Estimate(x *relation.Database) int {
	s := canonicalString(x)
	max := len(s)
	if len(e.tv.str) > max {
		max = len(e.tv.str)
	}
	if max == 0 {
		return 0
	}
	d := LevenshteinDistance(s, e.tv.str)
	return int(math.Round(e.k * float64(d) / float64(max)))
}

// jaccardEvaluator is the extended role-tagged Jaccard distance.
type jaccardEvaluator struct{ base }

func (e *jaccardEvaluator) finish(a *agg) int {
	union := a.distinctJ + e.tv.tTotal - a.interJ
	if union == 0 {
		return 0
	}
	d := 1 - float64(a.interJ)/float64(union)
	return int(math.Round(e.k * d))
}

func (e *jaccardEvaluator) Estimate(x *relation.Database) int {
	return e.finish(seedAgg(x, e.tv, needJac))
}

func (e *jaccardEvaluator) Seed(x *relation.Database) Agg { return seedAgg(x, e.tv, needJac) }

func (e *jaccardEvaluator) EstimateDelta(parent Agg, d Delta) (int, Agg) {
	a := deltaAgg(parent.(*agg), d, e.tv, needJac)
	return e.finish(a), a
}

// hybridEvaluator is the extended content+structure heuristic: h1 + h2 +
// the shape deficit.
type hybridEvaluator struct{ base }

func (e *hybridEvaluator) finish(a *agg) int {
	dRel := deficit(e.tv.shape.rels, a.rels)
	dAttr := deficit(e.tv.shape.attrs, a.attrs)
	dTup := deficit(e.tv.shape.tuples, a.tuples)
	max := dRel
	if dAttr > max {
		max = dAttr
	}
	if dTup > max {
		max = dTup
	}
	return a.h1 + a.h2 + max
}

func (e *hybridEvaluator) Estimate(x *relation.Database) int {
	return e.finish(seedAgg(x, e.tv, needSets|needShape))
}

func (e *hybridEvaluator) Seed(x *relation.Database) Agg {
	return seedAgg(x, e.tv, needSets|needShape)
}

func (e *hybridEvaluator) EstimateDelta(parent Agg, d Delta) (int, Agg) {
	a := deltaAgg(parent.(*agg), d, e.tv, needSets|needShape)
	return e.finish(a), a
}
