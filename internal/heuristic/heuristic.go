// Package heuristic implements the search heuristics of §3 of "Data Mapping
// as Search" (EDBT 2006). A heuristic h(x) estimates the number of
// intermediate search states between a database x and the target critical
// instance t. All heuristics view databases through their Tuple Normal Form
// — here via the per-relation TNF fragments memoized on relation.Relation
// (relation.Fragment), whose multiset counters merge into exactly the
// projections, term vectors, and canonical strings that tnf.Encode produces:
//
//	h0    — constant 0: brute-force blind search (the paper's baseline)
//	h1    — set difference of the REL/ATT/VALUE projections
//	h2    — minimum promotions/demotions: cross-intersections of projections
//	h3    — max(h1, h2)
//	hL    — normalized Levenshtein distance of canonical strings, scaled by k
//	hE    — Euclidean distance of (REL, ATT, VALUE)-triple term vectors
//	h|E|  — normalized Euclidean distance, scaled by k
//	hcos  — cosine distance of term vectors, scaled by k
//
// Heuristics are exposed through the Evaluator interface (see evaluator.go);
// most kinds additionally implement IncrementalEvaluator and can evaluate a
// successor by delta-merging the replaced relation's fragment against the
// parent's aggregate instead of re-encoding the whole state.
//
// The scaling constants k that the paper found optimal per (algorithm,
// heuristic) pair live in scale.go.
package heuristic

import (
	"fmt"
	"strings"
)

// Kind identifies one of the paper's heuristics.
type Kind int

const (
	// Unset is the zero Kind. It is not a heuristic of its own: the engine
	// resolves it to the paper's overall best (Cosine), so a zero-valued
	// configuration means "best known" rather than silently selecting blind
	// search. Use H0 explicitly to request blind search.
	Unset Kind = iota
	// H0 is the constant-zero heuristic inducing blind search.
	H0
	// H1 counts target relation/attribute/value tokens missing from x.
	H1
	// H2 counts cross-category overlaps: the minimum number of promotions
	// (↑) and demotions (↓) needed to move tokens between metadata and data.
	H2
	// H3 is max(H1, H2).
	H3
	// Levenshtein is the normalized string-edit-distance heuristic hL.
	Levenshtein
	// Euclid is the unnormalized term-vector Euclidean distance hE.
	Euclid
	// EuclidNorm is the normalized term-vector Euclidean distance h|E|.
	EuclidNorm
	// Cosine is the term-vector cosine distance hcos.
	Cosine
)

// Kinds lists all heuristics in the paper's presentation order.
func Kinds() []Kind {
	return []Kind{H0, H1, H2, H3, Levenshtein, Euclid, EuclidNorm, Cosine}
}

// KindNames returns the accepted names of every heuristic — the paper's
// eight followed by the extended kinds — in presentation order. It is the
// single source of truth behind CLI flag help and ParseKind's error message.
func KindNames() []string {
	paper, ext := Kinds(), ExtendedKinds()
	out := make([]string, 0, len(paper)+len(ext))
	for _, k := range paper {
		out = append(out, k.String())
	}
	for _, k := range ext {
		out = append(out, k.String())
	}
	return out
}

// String names the heuristic as in the paper's figures.
func (k Kind) String() string {
	switch k {
	case Unset:
		return "unset"
	case H0:
		return "h0"
	case H1:
		return "h1"
	case H2:
		return "h2"
	case H3:
		return "h3"
	case Levenshtein:
		return "levenshtein"
	case Euclid:
		return "euclid"
	case EuclidNorm:
		return "euclid-norm"
	case Cosine:
		return "cosine"
	default:
		if s := extendedString(k); s != "" {
			return s
		}
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves the names accepted on command lines and in configs,
// including the extended (post-paper) heuristics. The error for an unknown
// name enumerates every valid one.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	for _, k := range ExtendedKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("heuristic: unknown kind %q (valid: %s)", s, strings.Join(KindNames(), ", "))
}

// Scaled reports whether the heuristic uses a scaling constant k (§3 scales
// only the normalized heuristics).
func (k Kind) Scaled() bool {
	switch k {
	case Levenshtein, EuclidNorm, Cosine, Jaccard:
		return true
	}
	return false
}
