// Package heuristic implements the search heuristics of §3 of "Data Mapping
// as Search" (EDBT 2006). A heuristic h(x) estimates the number of
// intermediate search states between a database x and the target critical
// instance t. All heuristics view databases through their Tuple Normal Form
// (package tnf):
//
//	h0    — constant 0: brute-force blind search (the paper's baseline)
//	h1    — set difference of the REL/ATT/VALUE projections
//	h2    — minimum promotions/demotions: cross-intersections of projections
//	h3    — max(h1, h2)
//	hL    — normalized Levenshtein distance of canonical strings, scaled by k
//	hE    — Euclidean distance of (REL, ATT, VALUE)-triple term vectors
//	h|E|  — normalized Euclidean distance, scaled by k
//	hcos  — cosine distance of term vectors, scaled by k
//
// The scaling constants k that the paper found optimal per (algorithm,
// heuristic) pair live in scale.go.
package heuristic

import (
	"fmt"
	"math"

	"tupelo/internal/relation"
	"tupelo/internal/tnf"
)

// Kind identifies one of the paper's heuristics.
type Kind int

const (
	// Unset is the zero Kind. It is not a heuristic of its own: the engine
	// resolves it to the paper's overall best (Cosine), so a zero-valued
	// configuration means "best known" rather than silently selecting blind
	// search. Use H0 explicitly to request blind search.
	Unset Kind = iota
	// H0 is the constant-zero heuristic inducing blind search.
	H0
	// H1 counts target relation/attribute/value tokens missing from x.
	H1
	// H2 counts cross-category overlaps: the minimum number of promotions
	// (↑) and demotions (↓) needed to move tokens between metadata and data.
	H2
	// H3 is max(H1, H2).
	H3
	// Levenshtein is the normalized string-edit-distance heuristic hL.
	Levenshtein
	// Euclid is the unnormalized term-vector Euclidean distance hE.
	Euclid
	// EuclidNorm is the normalized term-vector Euclidean distance h|E|.
	EuclidNorm
	// Cosine is the term-vector cosine distance hcos.
	Cosine
)

// Kinds lists all heuristics in the paper's presentation order.
func Kinds() []Kind {
	return []Kind{H0, H1, H2, H3, Levenshtein, Euclid, EuclidNorm, Cosine}
}

// String names the heuristic as in the paper's figures.
func (k Kind) String() string {
	switch k {
	case Unset:
		return "unset"
	case H0:
		return "h0"
	case H1:
		return "h1"
	case H2:
		return "h2"
	case H3:
		return "h3"
	case Levenshtein:
		return "levenshtein"
	case Euclid:
		return "euclid"
	case EuclidNorm:
		return "euclid-norm"
	case Cosine:
		return "cosine"
	default:
		if s := extendedString(k); s != "" {
			return s
		}
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves the names accepted on command lines and in configs,
// including the extended (post-paper) heuristics.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	for _, k := range ExtendedKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("heuristic: unknown kind %q", s)
}

// Scaled reports whether the heuristic uses a scaling constant k (§3 scales
// only the normalized heuristics).
func (k Kind) Scaled() bool {
	switch k {
	case Levenshtein, EuclidNorm, Cosine, Jaccard:
		return true
	}
	return false
}

// Estimator is a heuristic bound to a fixed target critical instance, with
// the target-side structures precomputed once. An Estimator is immutable
// after construction and safe for concurrent use by multiple goroutines.
type Estimator struct {
	kind Kind
	k    float64

	// Target-side precomputation.
	tRel, tAtt, tVal map[string]bool
	tString          string
	tVec             vector
	tNorm            float64
	tShape           shape
}

// New builds an estimator for the given heuristic kind against the target.
// k is the scaling constant for the normalized heuristics; pass 0 to use
// the neutral value 1. Unscaled heuristics ignore k. The Unset kind
// resolves to Cosine, the paper's overall best.
func New(kind Kind, target *relation.Database, k float64) *Estimator {
	if kind == Unset {
		kind = Cosine
	}
	if k <= 0 {
		k = 1
	}
	t := tnf.Encode(target)
	e := &Estimator{
		kind: kind,
		k:    k,
		tRel: t.RelSet(),
		tAtt: t.AttSet(),
		tVal: t.ValueSet(),
	}
	switch kind {
	case Levenshtein:
		e.tString = t.CanonicalString()
	case Euclid, EuclidNorm, Cosine:
		e.tVec = newVector(t)
		e.tNorm = e.tVec.norm()
	case Hybrid:
		e.tShape = shapeOf(target)
	}
	return e
}

// Name returns the heuristic's name.
func (e *Estimator) Name() string { return e.kind.String() }

// Kind returns the heuristic's kind.
func (e *Estimator) Kind() Kind { return e.kind }

// K returns the scaling constant in effect.
func (e *Estimator) K() float64 { return e.k }

// Estimate computes h(x) for a database state.
func (e *Estimator) Estimate(x *relation.Database) int {
	switch e.kind {
	case H0:
		return 0
	case H1:
		return e.h1(tnf.Encode(x))
	case H2:
		return e.h2(tnf.Encode(x))
	case H3:
		t := tnf.Encode(x)
		h1, h2 := e.h1(t), e.h2(t)
		if h1 > h2 {
			return h1
		}
		return h2
	case Levenshtein:
		return e.hLev(tnf.Encode(x))
	case Euclid:
		return e.hEuclid(tnf.Encode(x), false)
	case EuclidNorm:
		return e.hEuclid(tnf.Encode(x), true)
	case Cosine:
		return e.hCosine(tnf.Encode(x))
	default:
		if e.kind >= 100 {
			return e.estimateExtended(x)
		}
		return 0
	}
}

// h1(x) = |πREL(t)−πREL(x)| + |πATT(t)−πATT(x)| + |πVALUE(t)−πVALUE(x)|.
func (e *Estimator) h1(x *tnf.Table) int {
	return diffSize(e.tRel, x.RelSet()) +
		diffSize(e.tAtt, x.AttSet()) +
		diffSize(e.tVal, x.ValueSet())
}

// h2(x) = Σ cross-category intersections between t's and x's projections:
// tokens that must change role via ↑ or ↓.
func (e *Estimator) h2(x *tnf.Table) int {
	xRel, xAtt, xVal := x.RelSet(), x.AttSet(), x.ValueSet()
	return interSize(e.tRel, xAtt) +
		interSize(e.tRel, xVal) +
		interSize(e.tAtt, xRel) +
		interSize(e.tAtt, xVal) +
		interSize(e.tVal, xRel) +
		interSize(e.tVal, xAtt)
}

// hLev(x) = round(k · L(string(x), string(t)) / max(|string(x)|, |string(t)|)).
func (e *Estimator) hLev(x *tnf.Table) int {
	s := x.CanonicalString()
	max := len(s)
	if len(e.tString) > max {
		max = len(e.tString)
	}
	if max == 0 {
		return 0
	}
	d := LevenshteinDistance(s, e.tString)
	return int(math.Round(e.k * float64(d) / float64(max)))
}

// hEuclid computes hE (norm=false) or h|E| (norm=true).
func (e *Estimator) hEuclid(x *tnf.Table, normalize bool) int {
	xv := newVector(x)
	if !normalize {
		return int(math.Round(xv.euclideanDistance(e.tVec)))
	}
	xn := xv.norm()
	d := xv.normalizedDistance(xn, e.tVec, e.tNorm)
	return int(math.Round(e.k * d))
}

// hCosine(x) = round(k · (1 − x·t / (|x||t|))).
func (e *Estimator) hCosine(x *tnf.Table) int {
	xv := newVector(x)
	xn := xv.norm()
	if xn == 0 || e.tNorm == 0 {
		if xn == 0 && e.tNorm == 0 {
			return 0
		}
		return int(math.Round(e.k))
	}
	cos := xv.dot(e.tVec) / (xn * e.tNorm)
	// Clamp against floating-point drift.
	if cos > 1 {
		cos = 1
	}
	if cos < 0 {
		cos = 0
	}
	return int(math.Round(e.k * (1 - cos)))
}

// diffSize returns |a − b|.
func diffSize(a, b map[string]bool) int {
	n := 0
	for k := range a {
		if !b[k] {
			n++
		}
	}
	return n
}

// interSize returns |a ∩ b|.
func interSize(a, b map[string]bool) int {
	// Iterate the smaller set.
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for k := range a {
		if b[k] {
			n++
		}
	}
	return n
}
