package heuristic

import "tupelo/internal/search"

// DefaultK returns the scaling constant k the paper found to give overall
// optimal performance for the given (algorithm, heuristic) pair (§5,
// "Experimental Setup"):
//
//	          Norm. Euclidean   Cosine Sim.   Levenshtein
//	IDA            k = 7           k = 5         k = 11
//	RBFS           k = 20          k = 24        k = 15
//
// Heuristics without a scaling constant get the neutral value 1.
// Experiment E0 (cmd/tupelo-bench -exp calibrate) re-derives this table.
func DefaultK(algo search.Algorithm, kind Kind) float64 {
	if !kind.Scaled() {
		return 1
	}
	switch algo {
	case search.IDA:
		switch kind {
		case EuclidNorm:
			return 7
		case Cosine:
			return 5
		case Levenshtein:
			return 11
		}
	case search.RBFS:
		switch kind {
		case EuclidNorm:
			return 20
		case Cosine:
			return 24
		case Levenshtein:
			return 15
		}
	}
	// A*/greedy are ablation-only; reuse the RBFS constants, which the
	// paper found best for best-first exploration.
	switch kind {
	case EuclidNorm:
		return 20
	case Cosine:
		return 24
	case Levenshtein:
		return 15
	}
	return 1
}
