package tnf

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"tupelo/internal/relation"
)

// These properties cross-check the columnar TNF fragments — the symbol-space
// counters the incremental heuristics consume — against this package's
// string-path encoding, which remains the reference semantics. Every count
// the fragment carries must be derivable from Encode's rows.

// fragmentsOf returns the per-relation fragments of db keyed by relation
// name.
func fragmentsOf(db *relation.Database) map[string]*relation.Fragment {
	out := make(map[string]*relation.Fragment)
	for _, r := range db.Relations() {
		out[r.Name()] = r.TNFFragment()
	}
	return out
}

// TestPropertyFragmentTriplesMatchEncode: the union of the fragments' Vec
// multisets must equal the (REL, ATT, VALUE) triple multiset of the string
// encoding, and each fragment's RowCount and VecSq must agree with it.
func TestPropertyFragmentTriplesMatchEncode(t *testing.T) {
	f := func(seed int64) bool {
		db := randomDatabase(rand.New(rand.NewSource(seed)))
		tab := Encode(db)

		want := make(map[[3]string]int)
		rowsPerRel := make(map[string]int)
		for _, tr := range tab.Triples() {
			want[tr]++
			rowsPerRel[tr[0]]++
		}

		got := make(map[[3]string]int)
		for name, frag := range fragmentsOf(db) {
			if frag.RowCount != rowsPerRel[name] {
				return false
			}
			var sq int64
			for tr, c := range frag.Vec {
				got[[3]string{tr[0].String(), tr[1].String(), tr[2].String()}] += c
				sq += int64(c) * int64(c)
			}
			if sq != frag.VecSq {
				return false
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k, c := range want {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFragmentSetsMatchEncode: the merged Atts/Vals key sets must
// equal the encoding's AttSet/ValueSet, and the multiset counts must sum to
// the number of rows carrying each token.
func TestPropertyFragmentSetsMatchEncode(t *testing.T) {
	f := func(seed int64) bool {
		db := randomDatabase(rand.New(rand.NewSource(seed)))
		tab := Encode(db)

		attCount := make(map[string]int)
		valCount := make(map[string]int)
		for _, r := range tab.Rows {
			if r.Att != "" {
				attCount[r.Att]++
			}
			if r.Value != "" {
				valCount[r.Value]++
			}
		}

		gotAtt := make(map[string]int)
		gotVal := make(map[string]int)
		for _, frag := range fragmentsOf(db) {
			for s, c := range frag.Atts {
				gotAtt[s.String()] += c
			}
			for s, c := range frag.Vals {
				gotVal[s.String()] += c
			}
		}
		if len(gotAtt) != len(tab.AttSet()) || len(gotVal) != len(tab.ValueSet()) {
			return false
		}
		for k, c := range attCount {
			if gotAtt[k] != c {
				return false
			}
		}
		for k, c := range valCount {
			if gotVal[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFragmentPartsMatchCanonicalString: merging the fragments'
// lazily decoded Parts in sorted order must reproduce CanonicalString — the
// exact string the Levenshtein heuristic compares.
func TestPropertyFragmentPartsMatchCanonicalString(t *testing.T) {
	f := func(seed int64) bool {
		db := randomDatabase(rand.New(rand.NewSource(seed)))
		var parts []string
		for _, frag := range fragmentsOf(db) {
			parts = append(parts, frag.Parts()...)
		}
		sort.Strings(parts)
		return strings.Join(parts, "") == Encode(db).CanonicalString()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
