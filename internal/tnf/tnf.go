// Package tnf implements Tuple Normal Form (TNF), the fixed-schema encoding
// of relational databases that TUPELO uses as its internal data
// representation ("Data Mapping as Search", §2.2; Litwin et al. 1991).
//
// The TNF of a database is a single four-column table
//
//	TID  REL  ATT  VALUE
//
// holding one row per (tuple, attribute) pair: the tuple's synthetic ID, the
// name of the relation the tuple belongs to, the attribute name, and the
// attribute value. Encoding a database in TNF makes both metadata (relation
// and attribute names) and data uniformly addressable, which is what the
// search heuristics of §3 operate on.
package tnf

import (
	"fmt"
	"sort"
	"strings"

	"tupelo/internal/relation"
)

// Row is a single TNF row.
type Row struct {
	TID   string // synthetic tuple identifier, unique per source tuple
	Rel   string // relation name
	Att   string // attribute name
	Value string // attribute value
}

// Table is the TNF encoding of a database. The zero value is an empty
// encoding ready for use.
type Table struct {
	Rows []Row
}

// Encode computes the TNF of a database. Tuple IDs are assigned
// deterministically: relations are visited in sorted-name order and tuples
// in their canonical order, so equal databases yield identical tables.
//
// Relations with zero attributes or zero tuples contribute schema-only rows
// with an empty VALUE and a per-relation pseudo TID, so that no relation is
// invisible to the heuristics.
func Encode(db *relation.Database) *Table {
	t := &Table{}
	id := 0
	for _, r := range db.Relations() {
		if r.Len() == 0 || r.Arity() == 0 {
			// Schema-only encoding: record the relation and its attributes
			// (if any) so the encoding is faithful for empty relations.
			// The reserved "s" TID prefix tells Decode these rows carry no
			// tuple. (The paper never encodes empty relations; this is the
			// natural totalization of its Example 4 scheme.)
			tid := fmt.Sprintf("s%d", id)
			id++
			if r.Arity() == 0 {
				t.Rows = append(t.Rows, Row{TID: tid, Rel: r.Name()})
				continue
			}
			for _, a := range r.Attrs() {
				t.Rows = append(t.Rows, Row{TID: tid, Rel: r.Name(), Att: a})
			}
			continue
		}
		for i := 0; i < r.Len(); i++ {
			tid := fmt.Sprintf("t%d", id)
			id++
			row := r.Row(i)
			for j, a := range r.Attrs() {
				t.Rows = append(t.Rows, Row{TID: tid, Rel: r.Name(), Att: a, Value: row[j]})
			}
		}
	}
	return t
}

// Decode reconstructs a database from a TNF table. It is the inverse of
// Encode up to attribute ordering (attributes come back sorted) for
// databases without empty relations; schema-only rows reconstruct empty
// relations.
func Decode(t *Table) (*relation.Database, error) {
	// Group rows by relation, collecting the attribute universe per relation
	// and the per-TID assignments.
	type tupleAcc map[string]string // attr -> value
	relAttrs := make(map[string]map[string]bool)
	relTuples := make(map[string]map[string]tupleAcc) // rel -> tid -> acc
	var relOrder []string
	for _, row := range t.Rows {
		if row.Rel == "" {
			return nil, fmt.Errorf("tnf: row with empty REL (tid=%q)", row.TID)
		}
		if _, ok := relAttrs[row.Rel]; !ok {
			relAttrs[row.Rel] = make(map[string]bool)
			relTuples[row.Rel] = make(map[string]tupleAcc)
			relOrder = append(relOrder, row.Rel)
		}
		if row.Att == "" {
			// Relation marker with no attributes.
			continue
		}
		relAttrs[row.Rel][row.Att] = true
		if strings.HasPrefix(row.TID, "s") {
			// Schema-only row: contributes an attribute, not a tuple.
			continue
		}
		acc, ok := relTuples[row.Rel][row.TID]
		if !ok {
			acc = make(tupleAcc)
			relTuples[row.Rel][row.TID] = acc
		}
		if prev, dup := acc[row.Att]; dup && prev != row.Value {
			return nil, fmt.Errorf("tnf: conflicting values %q and %q for (%s, %s, %s)", prev, row.Value, row.TID, row.Rel, row.Att)
		}
		acc[row.Att] = row.Value
	}
	sort.Strings(relOrder)
	rels := make([]*relation.Relation, 0, len(relOrder))
	for _, name := range relOrder {
		attrs := make([]string, 0, len(relAttrs[name]))
		for a := range relAttrs[name] {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		b, err := relation.NewBuilder(name, attrs)
		if err != nil {
			return nil, fmt.Errorf("tnf: %v", err)
		}
		// Deterministic tuple order: sort TIDs.
		tids := make([]string, 0, len(relTuples[name]))
		for tid := range relTuples[name] {
			tids = append(tids, tid)
		}
		sort.Strings(tids)
		for _, tid := range tids {
			acc := relTuples[name][tid]
			row := make(relation.Tuple, len(attrs))
			for i, a := range attrs {
				v, ok := acc[a]
				if !ok {
					return nil, fmt.Errorf("tnf: tuple %s of %s missing attribute %s", tid, name, a)
				}
				row[i] = v
			}
			if err := b.Add(row); err != nil {
				return nil, fmt.Errorf("tnf: %v", err)
			}
		}
		rels = append(rels, b.Relation())
	}
	return relation.NewDatabase(rels...)
}

// Len returns the number of TNF rows.
func (t *Table) Len() int { return len(t.Rows) }

// RelSet returns the distinct REL column values (π_REL in the paper's
// heuristic definitions).
func (t *Table) RelSet() map[string]bool {
	out := make(map[string]bool)
	for _, r := range t.Rows {
		out[r.Rel] = true
	}
	return out
}

// AttSet returns the distinct ATT column values, excluding the empty marker.
func (t *Table) AttSet() map[string]bool {
	out := make(map[string]bool)
	for _, r := range t.Rows {
		if r.Att != "" {
			out[r.Att] = true
		}
	}
	return out
}

// ValueSet returns the distinct VALUE column values, excluding the empty
// marker used for schema-only rows.
func (t *Table) ValueSet() map[string]bool {
	out := make(map[string]bool)
	for _, r := range t.Rows {
		if r.Value != "" {
			out[r.Value] = true
		}
	}
	return out
}

// CanonicalString implements the string(d) serialization of §3: for each TNF
// row form REL⊙ATT⊙VALUE (⊙ = concatenation), order the resulting strings
// lexicographically (with repetitions), and concatenate. The Levenshtein
// heuristic compares these strings.
func (t *Table) CanonicalString() string {
	parts := make([]string, len(t.Rows))
	for i, r := range t.Rows {
		parts[i] = r.Rel + r.Att + r.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, "")
}

// Triples returns the (REL, ATT, VALUE) triple of every row, in row order.
// The term-vector heuristics of §3 count occurrences of these triples.
func (t *Table) Triples() [][3]string {
	out := make([][3]string, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = [3]string{r.Rel, r.Att, r.Value}
	}
	return out
}

// String renders the TNF table in the four-column layout of the paper's
// Example 4.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString("TID\tREL\tATT\tVALUE\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s\t%s\t%s\t%s\n", r.TID, r.Rel, r.Att, r.Value)
	}
	return b.String()
}
