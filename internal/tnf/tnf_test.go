package tnf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tupelo/internal/relation"
)

// flightsC reproduces the paper's Example 4 input (database FlightsC).
func flightsC() *relation.Database {
	return relation.MustDatabase(
		relation.MustNew("AirEast", []string{"Route", "BaseCost", "TotalCost"},
			relation.Tuple{"ATL29", "100", "115"},
			relation.Tuple{"ORD17", "110", "125"},
		),
		relation.MustNew("JetWest", []string{"Route", "BaseCost", "TotalCost"},
			relation.Tuple{"ATL29", "200", "216"},
			relation.Tuple{"ORD17", "220", "236"},
		),
	)
}

func TestEncodeExample4(t *testing.T) {
	tab := Encode(flightsC())
	// 4 tuples × 3 attributes = 12 TNF rows, exactly as in Example 4.
	if tab.Len() != 12 {
		t.Fatalf("TNF of FlightsC has %d rows, want 12", tab.Len())
	}
	rels := tab.RelSet()
	if !rels["AirEast"] || !rels["JetWest"] || len(rels) != 2 {
		t.Fatalf("RelSet = %v", rels)
	}
	atts := tab.AttSet()
	for _, a := range []string{"Route", "BaseCost", "TotalCost"} {
		if !atts[a] {
			t.Fatalf("AttSet missing %s", a)
		}
	}
	vals := tab.ValueSet()
	for _, v := range []string{"ATL29", "100", "115", "236"} {
		if !vals[v] {
			t.Fatalf("ValueSet missing %s", v)
		}
	}
	// Every tuple's rows share a TID, and distinct tuples have distinct TIDs.
	tids := make(map[string]map[string]bool) // tid -> set of attrs
	for _, r := range tab.Rows {
		if tids[r.TID] == nil {
			tids[r.TID] = make(map[string]bool)
		}
		tids[r.TID][r.Att] = true
	}
	if len(tids) != 4 {
		t.Fatalf("distinct TIDs = %d, want 4", len(tids))
	}
	for tid, attrs := range tids {
		if len(attrs) != 3 {
			t.Fatalf("TID %s covers %d attributes, want 3", tid, len(attrs))
		}
	}
}

func TestRoundTrip(t *testing.T) {
	db := flightsC()
	back, err := Decode(Encode(db))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(db) {
		t.Fatalf("round trip lost information:\nin:\n%s\nout:\n%s", db, back)
	}
}

func TestRoundTripEmptyRelation(t *testing.T) {
	db := relation.MustDatabase(
		relation.MustNew("Empty", []string{"A", "B"}),
		relation.MustNew("Data", []string{"X"}, relation.Tuple{"1"}),
	)
	back, err := Decode(Encode(db))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(db) {
		t.Fatalf("empty-relation round trip:\nin:\n%s\nout:\n%s", db, back)
	}
}

func TestRoundTripNoAttrRelation(t *testing.T) {
	db := relation.MustDatabase(relation.MustNew("Bare", nil))
	back, err := Decode(Encode(db))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(db) {
		t.Fatalf("attribute-less relation round trip failed:\n%s", back)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		rows []Row
	}{
		{"empty REL", []Row{{TID: "t0", Rel: "", Att: "A", Value: "1"}}},
		{"conflicting values", []Row{
			{TID: "t0", Rel: "R", Att: "A", Value: "1"},
			{TID: "t0", Rel: "R", Att: "A", Value: "2"},
		}},
		{"missing attribute", []Row{
			{TID: "t0", Rel: "R", Att: "A", Value: "1"},
			{TID: "t0", Rel: "R", Att: "B", Value: "2"},
			{TID: "t1", Rel: "R", Att: "A", Value: "3"},
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(&Table{Rows: tc.rows}); err == nil {
				t.Fatal("Decode should fail")
			}
		})
	}
}

func TestCanonicalStringStable(t *testing.T) {
	db := flightsC()
	a := Encode(db).CanonicalString()
	b := Encode(db.Clone()).CanonicalString()
	if a != b {
		t.Fatal("canonical string is not deterministic")
	}
	if !strings.Contains(a, "AirEast") {
		t.Fatal("canonical string missing relation token")
	}
}

func TestTriplesAndString(t *testing.T) {
	db := relation.MustDatabase(
		relation.MustNew("R", []string{"A"}, relation.Tuple{"v"}),
	)
	tab := Encode(db)
	tr := tab.Triples()
	if len(tr) != 1 || tr[0] != [3]string{"R", "A", "v"} {
		t.Fatalf("Triples = %v", tr)
	}
	s := tab.String()
	if !strings.HasPrefix(s, "TID\tREL\tATT\tVALUE") {
		t.Fatalf("String header wrong: %q", s)
	}
}

func randomDatabase(rng *rand.Rand) *relation.Database {
	n := 1 + rng.Intn(3)
	rels := make([]*relation.Relation, n)
	for i := range rels {
		nAttr := 1 + rng.Intn(4)
		attrs := make([]string, nAttr)
		for j := range attrs {
			attrs[j] = "a" + string(rune('A'+j)) + string(rune('a'+rng.Intn(5)))
		}
		r := relation.MustNew("R"+string(rune('0'+i)), attrs)
		for k := rng.Intn(5); k > 0; k-- {
			row := make(relation.Tuple, nAttr)
			for j := range row {
				row[j] = "v" + string(rune('0'+rng.Intn(10)))
			}
			var err error
			r, err = r.Insert(row)
			if err != nil {
				panic(err)
			}
		}
		rels[i] = r
	}
	return relation.MustDatabase(rels...)
}

// TNF round-trip is the load-bearing invariant: the mapper's heuristics all
// view states through TNF, so information loss here silently corrupts search.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		db := randomDatabase(rand.New(rand.NewSource(seed)))
		back, err := Decode(Encode(db))
		if err != nil {
			return false
		}
		return back.Equal(db)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Equal databases must encode to identical canonical strings; the
// Levenshtein heuristic depends on this.
func TestPropertyCanonicalStringEqual(t *testing.T) {
	f := func(seed int64) bool {
		db := randomDatabase(rand.New(rand.NewSource(seed)))
		return Encode(db).CanonicalString() == Encode(db.Clone()).CanonicalString()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
