package tnf

import (
	"strings"
	"testing"
)

// fuzzTable builds a TNF table from a compact fuzz encoding: one row per
// line, fields separated by tabs (TID, REL, ATT, VALUE; missing fields stay
// empty). This reaches Decode with arbitrary — including inconsistent —
// tables, which is exactly what the fuzzer should exercise: Decode must
// reject them with an error, never panic.
func fuzzTable(s string) *Table {
	t := &Table{}
	for _, line := range strings.Split(s, "\n") {
		f := strings.SplitN(line, "\t", 4)
		var row Row
		row.TID = f[0]
		if len(f) > 1 {
			row.Rel = f[1]
		}
		if len(f) > 2 {
			row.Att = f[2]
		}
		if len(f) > 3 {
			row.Value = f[3]
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// FuzzDecode checks that decoding an arbitrary TNF table never panics, and
// that every table Decode accepts survives an Encode → Decode round trip
// onto an equal database.
func FuzzDecode(f *testing.F) {
	f.Add("t0\tFlights\tCarrier\tAirEast\nt0\tFlights\tFee\t15")
	f.Add("t0\tR\tA\tx\nt1\tR\tA\ty")
	f.Add("s0\tR\tA\t\ns0\tR\tB\t")
	f.Add("s0\tR")
	f.Add("t0\tR\tA\tx\nt0\tR\tA\ty") // conflicting values
	f.Add("t0\t\tA\tx")               // empty REL
	f.Add("t0\tR\tA\tx\nt1\tR\tB\ty") // ragged tuples
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		table := fuzzTable(s)
		db, err := Decode(table)
		if err != nil {
			return
		}
		if db == nil {
			t.Fatal("Decode returned nil database and nil error")
		}
		// Round trip: re-encoding the decoded database and decoding again
		// must reproduce it exactly.
		db2, err := Decode(Encode(db))
		if err != nil {
			t.Fatalf("re-decode of encoded database failed: %v\ninput: %q", err, s)
		}
		if !db.Equal(db2) {
			t.Fatalf("round trip changed the database:\n%s\nvs\n%s", db, db2)
		}
		// The canonical encoding must be a fixed point.
		if a, b := Encode(db).CanonicalString(), Encode(db2).CanonicalString(); a != b {
			t.Fatalf("canonical encodings diverge:\n%s\nvs\n%s", a, b)
		}
	})
}
