// Package tupelo is a Go implementation of TUPELO, the example-driven data
// mapping system of Fletcher & Wyss, "Data Mapping as Search" (EDBT 2006).
//
// TUPELO discovers executable mapping expressions between relational
// schemas from user-provided critical instances: small example databases
// that illustrate the same information under the source and the target
// schema (the Rosetta Stone principle). Discovery is heuristic search in
// the space of dynamic relational transformations — schema matching
// (renames), data–metadata restructuring (promote, demote, dereference,
// partition, merge, product, drop), and complex many-to-one semantic
// functions (λ).
//
// # Quick start
//
//	src, _ := tupelo.ReadInstanceString(`
//	relation Emp
//	  nm     dept
//	  Alice  Sales
//	`)
//	tgt, _ := tupelo.ReadInstanceString(`
//	relation Employee
//	  Name   Dept
//	  Alice  Sales
//	`)
//	res, err := tupelo.Discover(src.DB, tgt.DB, tupelo.DefaultOptions())
//	// res.Expr now holds:
//	//   rename_att[Emp,nm->Name]
//	//   rename_att[Emp,dept->Dept]
//	//   rename_rel[Emp->Employee]
//
// The discovered expression is executable: apply it with Result.Apply (or
// Expr.Eval) to full instances of the source schema.
package tupelo

import (
	"context"
	"io"

	"tupelo/internal/core"
	"tupelo/internal/critio"
	"tupelo/internal/fira"
	"tupelo/internal/heuristic"
	"tupelo/internal/lambda"
	"tupelo/internal/obs"
	"tupelo/internal/postproc"
	"tupelo/internal/relation"
	"tupelo/internal/search"
	"tupelo/internal/sqlgen"
)

// Core data model (package internal/relation).
type (
	// Database is a named collection of relations; used for critical
	// instances and for the data a discovered mapping is applied to.
	Database = relation.Database
	// Relation is a named set of tuples over an ordered attribute list.
	Relation = relation.Relation
	// Tuple is one row of a relation.
	Tuple = relation.Tuple
)

// Mapping machinery (packages internal/core, internal/fira,
// internal/lambda, internal/search, internal/heuristic).
type (
	// Options configures Discover; the zero value selects the paper's
	// best configuration (RBFS with the cosine heuristic), so Options{}
	// and DefaultOptions() are equivalent.
	Options = core.Options
	// Result is a successful discovery: the expression plus search stats.
	Result = core.Result
	// Stats reports search effort; Stats.Examined is the paper's
	// performance measure.
	Stats = search.Stats
	// SearchError is the error type returned by failed or cancelled
	// discoveries; it wraps the cause (ErrNotFound, ErrLimit,
	// context.Canceled, context.DeadlineExceeded) and carries the partial
	// Stats, recoverable with errors.As.
	SearchError = search.Error
	// PanicError is the cause wrapped by a SearchError when a discovery
	// goroutine panicked: the recovered value, the captured stack, and the
	// goroutine's identity. Discovery never lets a panic escape to the
	// caller — recover it with errors.As.
	PanicError = search.PanicError
	// PartialMapping is the closest frontier state an aborted best-effort
	// run reached (Limits.BestEffort); carried on SearchError.Partial and
	// surfaced through Result.PartialState when the abort is degradable.
	PartialMapping = search.Partial
	// PortfolioConfig names one member of a portfolio race.
	PortfolioConfig = core.PortfolioConfig
	// PortfolioOptions configures DiscoverPortfolio.
	PortfolioOptions = core.PortfolioOptions
	// PortfolioResult is the winning member's Result plus every member's
	// outcome.
	PortfolioResult = core.PortfolioResult
	// PortfolioRun reports one portfolio member's outcome.
	PortfolioRun = core.PortfolioRun
	// HeuristicCache memoizes heuristic estimates across runs; inject one
	// through Options.Cache to share TNF encodings between discoveries.
	HeuristicCache = heuristic.Cache
	// Expr is an executable mapping expression in the language L.
	Expr = fira.Expr
	// Op is a single operator of L.
	Op = fira.Op
	// Correspondence declares a complex semantic mapping (λ) between
	// source attributes and a target attribute.
	Correspondence = lambda.Correspondence
	// Registry resolves the named functions used by λ operators.
	Registry = lambda.Registry
	// Func is a complex semantic function.
	Func = lambda.Func
	// Algorithm selects the search strategy.
	Algorithm = search.Algorithm
	// Heuristic identifies one of the paper's search heuristics.
	Heuristic = heuristic.Kind
	// Limits bounds a discovery run.
	Limits = search.Limits
	// Instance is a critical instance read from the text format: a
	// database plus λ correspondences.
	Instance = critio.Instance
)

// Search algorithms (§2.3).
const (
	// AlgorithmUnset is the zero Algorithm; it resolves to RBFS, the
	// paper's overall best, so a zero-valued Options means "best known"
	// (under Options.ParallelSearch it resolves to AStar, the algorithm
	// the hash-sharded engine partitions).
	AlgorithmUnset = search.AlgorithmUnset
	// IDA is Iterative Deepening A*.
	IDA = search.IDA
	// RBFS is Recursive Best-First Search, the paper's overall best.
	RBFS = search.RBFS
	// AStar is plain A*: historically ablation-only (exponential memory),
	// now also the algorithm Options.ParallelSearch shards across workers.
	AStar = search.AStar
	// Greedy is greedy best-first search (ablation only).
	Greedy = search.Greedy
)

// Search heuristics (§3).
const (
	// HUnset is the zero Heuristic; it resolves to HCosine, the paper's
	// overall best. Use H0 explicitly for blind search.
	HUnset = heuristic.Unset
	// H0 is blind search.
	H0 = heuristic.H0
	// H1 counts target tokens missing from the state.
	H1 = heuristic.H1
	// H2 counts tokens that must switch between data and metadata.
	H2 = heuristic.H2
	// H3 is max(H1, H2).
	H3 = heuristic.H3
	// HLevenshtein is the normalized string edit distance heuristic.
	HLevenshtein = heuristic.Levenshtein
	// HEuclid is the term-vector Euclidean distance heuristic.
	HEuclid = heuristic.Euclid
	// HEuclidNorm is the normalized Euclidean heuristic.
	HEuclidNorm = heuristic.EuclidNorm
	// HCosine is the cosine similarity heuristic.
	HCosine = heuristic.Cosine

	// HHybrid is a post-paper extension combining content and structure
	// (the open question of §7): h1 + h2 + a structural-deficit term.
	HHybrid = heuristic.Hybrid
	// HJaccard is a post-paper extension: scaled Jaccard distance over the
	// role-tagged TNF token sets.
	HJaccard = heuristic.Jaccard
)

// Sentinel discovery errors, matchable with errors.Is against the error
// returned by Discover and friends.
var (
	// ErrNotFound means the search space was exhausted without a mapping.
	ErrNotFound = search.ErrNotFound
	// ErrLimit means the search exceeded Limits.MaxStates.
	ErrLimit = search.ErrLimit
	// ErrMemory means the search exceeded Limits.MaxHeapBytes. It always
	// travels with ErrLimit, so errors.Is(err, ErrLimit) still classifies
	// the run as budget-bound and errors.Is(err, ErrMemory) refines it.
	ErrMemory = search.ErrMemory
)

// NewRelation creates a relation from a name, attribute list, and rows.
func NewRelation(name string, attrs []string, rows ...Tuple) (*Relation, error) {
	return relation.New(name, attrs, rows...)
}

// MustRelation is NewRelation panicking on error, for static fixtures.
func MustRelation(name string, attrs []string, rows ...Tuple) *Relation {
	return relation.MustNew(name, attrs, rows...)
}

// NewDatabase creates a database from relations with unique names.
func NewDatabase(rels ...*Relation) (*Database, error) {
	return relation.NewDatabase(rels...)
}

// MustDatabase is NewDatabase panicking on error, for static fixtures.
func MustDatabase(rels ...*Relation) *Database {
	return relation.MustDatabase(rels...)
}

// DefaultOptions returns the paper's overall best configuration: RBFS with
// the cosine similarity heuristic at its published scaling constant.
func DefaultOptions() Options { return core.DefaultOptions() }

// Discover searches for a mapping expression carrying the source critical
// instance to (a superset of) the target critical instance (§2.3). It is
// DiscoverContext with context.Background().
func Discover(source, target *Database, opts Options) (*Result, error) {
	return core.Discover(source, target, opts)
}

// DiscoverContext is Discover under a context: cancellation and deadline
// are checked once per examined state. A cancelled run returns a
// *SearchError wrapping ctx.Err() with the partial Stats populated.
func DiscoverContext(ctx context.Context, source, target *Database, opts Options) (*Result, error) {
	return core.DiscoverContext(ctx, source, target, opts)
}

// DiscoverPortfolio races several (algorithm, heuristic, k) configurations
// over independent copies of the problem, returning the first verified
// mapping and cancelling the rest. Members that agree on (heuristic, k)
// share a heuristic cache. An empty PortfolioOptions races
// DefaultPortfolio() with the default Options.
func DiscoverPortfolio(ctx context.Context, source, target *Database, popts PortfolioOptions) (*PortfolioResult, error) {
	return core.DiscoverPortfolio(ctx, source, target, popts)
}

// DefaultPortfolio returns the default racing lineup of DiscoverPortfolio.
func DefaultPortfolio() []PortfolioConfig { return core.DefaultPortfolio() }

// NewHeuristicCache returns a concurrency-safe heuristic cache suitable
// for Options.Cache, for sharing TNF encodings across related discoveries.
func NewHeuristicCache() HeuristicCache { return heuristic.NewSyncCache() }

// Observability (package internal/obs): a race-safe metrics registry and a
// structured trace-event stream, attached to runs through Options.Metrics
// and Options.Tracer.
type (
	// Metrics is a race-safe registry of counters, gauges, and timers.
	// Attach one through Options.Metrics (or PortfolioOptions.Options);
	// expose it with WriteJSON (expvar-style), WritePrometheus (text
	// exposition), or Handler (HTTP, Prometheus by default and JSON with
	// ?format=json).
	Metrics = obs.Registry
	// Tracer receives structured trace events from a run. Implementations
	// must be safe for concurrent use.
	Tracer = obs.Tracer
	// TraceEvent is one structured trace record.
	TraceEvent = obs.Event
	// TraceEventKind classifies a TraceEvent.
	TraceEventKind = obs.EventKind
	// TraceCollector is a Tracer that records the event stream in memory.
	TraceCollector = obs.Collector
	// Profile is a Tracer that aggregates a run's event stream into a
	// performance profile: per-depth expansion counts, per-operator apply
	// latencies, and a states/sec timeline. Render it with WriteReport
	// (text) or WriteChromeTrace (chrome://tracing / Perfetto JSON).
	Profile = obs.Profile
	// FlightRecorder is the always-on forensic event log: per-goroutine
	// ring buffers of compact binary records, dumped as a tupelo-flight/v1
	// JSONL stream when a run dies (panic, memory abort, deadline). Attach
	// one through Options.Flight.
	FlightRecorder = obs.FlightRecorder
	// RunReport is the tupelo-report/v1 forensic run report: span tree,
	// heuristic-quality profile, effective branching factor, cache hit
	// rates, and shard balance. Assemble one with BuildReport.
	RunReport = obs.RunReport
	// ReportBuilder is a Tracer that captures the structural skeleton of a
	// run (spans, shard samples, cache traffic) for BuildReport. Attach it
	// through Options.Tracer (compose with MultiTracer to keep others).
	ReportBuilder = obs.ReportBuilder
)

// Trace event kinds emitted during discovery and portfolio races.
const (
	// EvRunStart and EvRunFinish bracket one search run.
	EvRunStart  = obs.EvRunStart
	EvRunFinish = obs.EvRunFinish
	// EvGoalTest, EvExpand and EvMove narrate the search-space exploration.
	EvGoalTest = obs.EvGoalTest
	EvExpand   = obs.EvExpand
	EvMove     = obs.EvMove
	// EvCacheHit and EvCacheMiss report heuristic-cache traffic.
	EvCacheHit  = obs.EvCacheHit
	EvCacheMiss = obs.EvCacheMiss
	// EvOpApply reports one operator application with its latency.
	EvOpApply = obs.EvOpApply
	// EvMemberStart, EvMemberWin, EvMemberLose and EvMemberCancel narrate a
	// portfolio race.
	EvMemberStart  = obs.EvMemberStart
	EvMemberWin    = obs.EvMemberWin
	EvMemberLose   = obs.EvMemberLose
	EvMemberCancel = obs.EvMemberCancel
	// EvPanic reports a recovered panic (successor worker, portfolio
	// member, or the discovery goroutine itself).
	EvPanic = obs.EvPanic
)

// NewMetrics returns an empty metrics registry for Options.Metrics.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewWriterTracer returns a Tracer rendering events as a human-readable
// transcript on w — the adapter for code that previously set the
// Options.TraceWriter field.
func NewWriterTracer(w io.Writer) Tracer { return obs.NewWriterTracer(w) }

// NewTraceCollector returns a Tracer that records the event stream in
// memory for programmatic inspection.
func NewTraceCollector() *TraceCollector { return obs.NewCollector() }

// MultiTracer fans trace events out to several tracers.
func MultiTracer(tracers ...Tracer) Tracer { return obs.MultiTracer(tracers...) }

// NewJSONTracer returns a Tracer writing one JSON object per event to w
// (JSON Lines), for machine-readable transcripts (tupelo discover
// -trace-json).
func NewJSONTracer(w io.Writer) Tracer { return obs.NewJSONTracer(w) }

// NewProfile returns an empty run profile; attach it through Options.Tracer
// (compose with MultiTracer to keep other tracers).
func NewProfile() *Profile { return obs.NewProfile() }

// SampleTracer forwards every n-th high-frequency event (goal tests,
// expansions, moves, operator applies, cache traffic) to t, passing
// structural run/portfolio events through unchanged. n <= 1 returns t.
func SampleTracer(t Tracer, n int) Tracer { return obs.Sample(t, n) }

// NewFlightRecorder returns a flight recorder whose rings hold ringSize
// records each (<= 0 selects the default of 4096); direct its automatic
// crash dumps with SetAutoDump.
func NewFlightRecorder(ringSize int) *FlightRecorder { return obs.NewFlightRecorder(ringSize) }

// NewReportBuilder returns a report builder whose root span starts now.
func NewReportBuilder() *ReportBuilder { return obs.NewReportBuilder() }

// BuildReport assembles the tupelo-report/v1 run report for one discovery:
// pass the Result and error exactly as DiscoverContext returned them, the
// instances and options of the run, and the ReportBuilder that traced it
// (nil for a report without a span tree). For the shard section to sum
// exactly, Options.Metrics must be a registry private to the run.
func BuildReport(res *Result, runErr error, source, target *Database, opts Options, rb *ReportBuilder) (*RunReport, error) {
	return core.BuildReport(res, runErr, source, target, opts, rb)
}

// WriteRunReport writes a run report as indented JSON.
func WriteRunReport(w io.Writer, r *RunReport) error { return obs.WriteRunReport(w, r) }

// Verify checks the discovery contract: evaluating expr on source yields a
// database containing target.
func Verify(expr Expr, source, target *Database, reg *Registry) error {
	return core.Verify(expr, source, target, reg)
}

// BranchingFactor returns the number of moves available from the source
// instance toward the target — the quantity §2.3 relates to |s| + |t|.
func BranchingFactor(source, target *Database, opts Options) (int, error) {
	return core.BranchingFactor(source, target, opts)
}

// Simplify removes provably redundant steps from a mapping expression
// relative to the given source instance.
func Simplify(expr Expr, source *Database, reg *Registry) Expr {
	return core.Simplify(expr, source, reg)
}

// ParseExpr reads a mapping expression in the textual syntax produced by
// Expr.String (one operator per line, e.g. "rename_att[R,A->B]").
func ParseExpr(src string) (Expr, error) { return fira.Parse(src) }

// Builtins returns a registry with the paper's example complex functions
// (sum, concat, lookups, date/unit/currency conversions).
func Builtins() *Registry { return lambda.Builtins() }

// NewRegistry returns an empty function registry.
func NewRegistry() *Registry { return lambda.NewRegistry() }

// ReadInstance parses a critical instance (relations + map directives)
// from the text format of package critio.
func ReadInstance(r io.Reader) (*Instance, error) { return critio.Read(r) }

// ReadInstanceString parses a critical instance from a string.
func ReadInstanceString(s string) (*Instance, error) { return critio.ReadString(s) }

// WriteInstance renders a critical instance in the text format.
func WriteInstance(w io.Writer, inst *Instance) error { return critio.Write(w, inst) }

// ParseHeuristic resolves a heuristic name ("h0", "h1", "h2", "h3",
// "levenshtein", "euclid", "euclid-norm", "cosine", plus the extended
// kinds). An unknown name yields an error enumerating every valid one.
func ParseHeuristic(s string) (Heuristic, error) { return heuristic.ParseKind(s) }

// Heuristics lists all eight heuristics in the paper's order.
func Heuristics() []Heuristic { return heuristic.Kinds() }

// HeuristicNames returns the accepted name of every heuristic — the paper's
// eight followed by the extended kinds. Command-line help is generated from
// this list, so it cannot drift from what ParseHeuristic accepts.
func HeuristicNames() []string { return heuristic.KindNames() }

// ParseAlgorithm resolves a search-algorithm name ("ida", "rbfs", "astar"
// or "a*", "greedy"), case-insensitively. An unknown name yields an error
// enumerating every valid one.
func ParseAlgorithm(s string) (Algorithm, error) { return search.ParseAlgorithm(s) }

// AlgorithmNames returns the accepted name of every search algorithm, the
// generated source of command-line help like HeuristicNames.
func AlgorithmNames() []string { return search.AlgorithmNames() }

// Post-processing (§2.1): the language L omits relational selection, so a
// mapped instance is a superset of the target; σ and schema conformance are
// applied afterwards according to external criteria.
type (
	// Predicate is a σ condition over tuples.
	Predicate = postproc.Predicate
	// ConformOptions tunes Conform.
	ConformOptions = postproc.ConformOptions
)

// ParsePredicate reads a σ predicate, e.g. `Route in (ATL29, ORD17)` or
// `not absent(TotalCost) and Carrier = AirEast`.
func ParsePredicate(s string) (Predicate, error) { return postproc.Parse(s) }

// Select applies σ_pred to the named relation of db.
func Select(db *Database, rel string, pred Predicate) (*Database, error) {
	return postproc.Select(db, rel, pred)
}

// Conform shapes a mapped database onto the target schema: drops relations
// the target lacks, projects onto the target's attributes, and optionally
// removes rows with absent values.
func Conform(db, target *Database, opts ConformOptions) (*Database, error) {
	return postproc.Conform(db, target, opts)
}

// SQL generation: compile mapping expressions to SQL scripts for execution
// inside an RDBMS.
type (
	// SQLScript is a generated SQL script with its final table bindings.
	SQLScript = sqlgen.Script
	// SQLOptions configures SQL generation (function translators,
	// intermediate table prefix).
	SQLOptions = sqlgen.Options
)

// GenerateSQL compiles a mapping expression into a SQL script, using the
// sample instance (normally the source critical instance) to resolve the
// data-dependent operators ↑ and ℘.
func GenerateSQL(expr Expr, sample *Database, opts SQLOptions) (*SQLScript, error) {
	return sqlgen.Generate(expr, sample, opts)
}
